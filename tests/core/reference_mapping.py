"""Fusion mapping and routing (paper Sec. 6): in-layer heuristic search.

FROZEN REFERENCE (do not edit): verbatim snapshot of the scalar
implementation taken immediately before the bit-packed rewrite of the
live module.  tests/core/test_mapping_equivalence_v2.py pins the packed
path bit-identical to this code; benchmarks/bench_mapping_v2.py measures
the speedup against it.

Embeds the irregular fusion graph into the regular grid of one (possibly
extended) physical layer after another.  Edges are traversed in
cycle-prioritized BFS order; each edge is realized either by placing the
new endpoint on an adjacent cell or by *fusion routing* — a path of
auxiliary resource states winding along the lattice (each auxiliary cell
burns two photons and can carry only one path for small resource states).
Candidate placements are scored with the paper's cost function

    ``H = occupied_area + #partially_blocked + alpha * #totally_blocked``

where a node is blocked when its remaining unmapped edges exceed its free
adjacent cells.  Nodes whose edges cannot all be realized within a layer
are *incomplete*; their leftover edges are handed to inter-layer
shuffling (:mod:`repro.core.shuffling`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.core.fusion_graph import FGNode, FusionGraph
from repro.hardware.resource_state import ResourceStateType
from repro.utils.geometry import grid_neighbor_table

Coord = Tuple[int, int]


@dataclass
class LayerLayout:
    """One mapped (extended) physical layer, for metrics and rendering."""

    index: int
    shape: Tuple[int, int]
    node_at: Dict[Coord, FGNode] = field(default_factory=dict)
    aux_cells: Set[Coord] = field(default_factory=set)
    paths: List[List[Coord]] = field(default_factory=list)
    incomplete: Set[FGNode] = field(default_factory=set)

    @property
    def occupied(self) -> int:
        return len(self.node_at) + len(self.aux_cells)


@dataclass(frozen=True)
class Placement:
    layer: int
    coord: Coord


@dataclass
class MappingResult:
    """Outcome of mapping one partition's fusion graph."""

    layers: List[LayerLayout]
    placements: Dict[FGNode, Placement]
    edge_fusions: int = 0
    synthesis_fusions: int = 0
    routing_fusions: int = 0
    deferred_edges: List[Tuple[FGNode, FGNode]] = field(default_factory=list)


class InLayerMapper:
    """Stateful mapper: one instance maps all partitions of a program."""

    def __init__(
        self,
        shape: Tuple[int, int],
        resource_state: ResourceStateType,
        alpha: Optional[float] = None,
        route_radius: int = 6,
        route_targets_limit: int = 6,
        connect_radius: Optional[int] = None,
    ) -> None:
        rows, cols = shape
        if rows < 2 or cols < 2:
            raise ValueError("layer must be at least 2x2")
        self.shape = shape
        self.resource_state = resource_state
        # paper: alpha > 1, typically the max degree of the physical layer
        self.alpha = float(alpha) if alpha is not None else 4.0
        self.route_radius = route_radius
        self.route_targets_limit = route_targets_limit
        #: bound on placed-to-placed routing (:meth:`_connect_placed`);
        #: ``None`` keeps the historical unbounded search — bounding it
        #: trades routing fusions for deferred (shuffled) edges
        self.connect_radius = connect_radius
        self.layers: List[LayerLayout] = []
        self.placements: Dict[FGNode, Placement] = {}
        self._hints: Dict[FGNode, Coord] = {}
        self._nbr_table: Dict[Coord, List[Coord]] = grid_neighbor_table(shape)
        self._reset_layer_state()

    # ------------------------------------------------------------------
    # layer lifecycle
    # ------------------------------------------------------------------
    def _reset_layer_state(self) -> None:
        self._occupied: Dict[Coord, object] = {}
        self._remaining: Dict[FGNode, int] = {}
        self._realized: Dict[FGNode, int] = {}
        self._rect: Optional[Tuple[int, int, int, int]] = None
        self._current: Optional[LayerLayout] = None
        self._free_nbrs: Dict[Coord, int] = {}

    def _open_layer(self) -> LayerLayout:
        layout = LayerLayout(index=len(self.layers), shape=self.shape)
        self.layers.append(layout)
        self._reset_layer_state()
        self._current = layout
        return layout

    def _close_layer(self) -> None:
        if self._current is None:
            return
        for coord, node in self._current.node_at.items():
            if self._remaining.get(node, 0) > 0:
                self._current.incomplete.add(node)
        self._current = None

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _in_bounds(self, coord: Coord) -> bool:
        r, c = coord
        return 0 <= r < self.shape[0] and 0 <= c < self.shape[1]

    def _neighbors(self, coord: Coord) -> List[Coord]:
        return self._nbr_table[coord]

    def _free(self, coord: Coord) -> bool:
        return coord not in self._occupied

    def _free_neighbor_count(self, coord: Coord) -> int:
        """Free neighbours of *coord*, cached incrementally.

        Cells only ever become occupied within a layer, so the cache is
        maintained by decrement when a cell is claimed (:meth:`_on_occupy`).
        """
        cached = self._free_nbrs.get(coord)
        if cached is None:
            occupied = self._occupied
            cached = sum(
                1 for p in self._nbr_table[coord] if p not in occupied
            )
            self._free_nbrs[coord] = cached
        return cached

    def _on_occupy(self, coord: Coord) -> None:
        """Keep the free-neighbour cache consistent after claiming a cell."""
        cache = self._free_nbrs
        for p in self._nbr_table[coord]:
            if p in cache:
                cache[p] -= 1

    # ------------------------------------------------------------------
    # cost function H
    # ------------------------------------------------------------------
    def _rect_area_with(self, extra: List[Coord]) -> int:
        coords = extra
        rect = self._rect
        if rect is None:
            xs = [c[0] for c in coords]
            ys = [c[1] for c in coords]
            if not xs:
                return 0
            return (max(xs) - min(xs) + 1) * (max(ys) - min(ys) + 1)
        x0, y0, x1, y1 = rect
        for (r, c) in coords:
            if r < x0:
                x0 = r
            elif r > x1:
                x1 = r
            if c < y0:
                y0 = c
            elif c > y1:
                y1 = c
        return (x1 - x0 + 1) * (y1 - y0 + 1)

    def _blockage_score(
        self, node: FGNode, coord: Coord, occupied_extra: Set[Coord]
    ) -> float:
        """Blockage contribution of one placed node given extra occupancy."""
        remaining = self._remaining.get(node, 0)
        if remaining <= 0:
            return 0.0
        free = sum(
            1
            for p in self._neighbors(coord)
            if self._free(p) and p not in occupied_extra
        )
        if free == 0:
            return self.alpha
        if remaining > free:
            return 1.0
        return 0.0

    def _score_candidate(
        self,
        new_cells: List[Coord],
        new_node: Optional[FGNode],
        node_cell: Optional[Coord],
        remaining_after: Dict[FGNode, int],
    ) -> float:
        """H after hypothetically occupying *new_cells*.

        Only nodes adjacent to the new cells (plus the new node) can
        change blockage, so the score is the area term plus local
        blockage deltas; the constant global part cancels in comparisons.
        """
        occupied = self._occupied
        remaining = self._remaining
        nbr_table = self._nbr_table
        placements = self.placements
        current_layer = len(self.layers) - 1
        # single-cell candidates (direct adjacency) dominate: avoid the
        # set allocations and min/max calls of the generic path
        single = new_cells[0] if len(new_cells) == 1 else None
        rect = self._rect
        if single is not None and rect is not None:
            x0, y0, x1, y1 = rect
            r, c = single
            if r < x0:
                x0 = r
            elif r > x1:
                x1 = r
            if c < y0:
                y0 = c
            elif c > y1:
                y1 = c
            score = float((x1 - x0 + 1) * (y1 - y0 + 1))
            occupied_extra: Optional[Set[Coord]] = None
        else:
            occupied_extra = set(new_cells)
            score = float(self._rect_area_with(new_cells))
        affected: Dict[FGNode, Coord] = {}
        for cell in new_cells:
            for p in nbr_table[cell]:
                occ = occupied.get(p)
                if isinstance(occ, tuple) and occ in remaining:
                    place = placements.get(occ)
                    if place is not None and place.layer == current_layer:
                        affected[occ] = place.coord
        # Hypothetically apply ``remaining_after`` (<= 2 keys) instead of
        # copying the whole dict; restore the exact prior entries after.
        missing = object()
        saved = [(key, remaining.get(key, missing)) for key in remaining_after]
        try:
            remaining.update(remaining_after)
            alpha = self.alpha
            to_score = list(affected.items())
            if new_node is not None and node_cell is not None:
                to_score.append((new_node, node_cell))
            for node, coord in to_score:
                # inlined _blockage_score: this is the innermost loop of
                # candidate scoring
                rem = remaining.get(node, 0)
                if rem <= 0:
                    continue
                free = 0
                if single is not None:
                    for p in nbr_table[coord]:
                        if p not in occupied and p != single:
                            free += 1
                else:
                    for p in nbr_table[coord]:
                        if p not in occupied and p not in occupied_extra:
                            free += 1
                if free == 0:
                    score += alpha
                elif rem > free:
                    score += 1.0
        finally:
            for key, value in saved:
                if value is missing:
                    remaining.pop(key, None)
                else:
                    remaining[key] = value
        return score

    # ------------------------------------------------------------------
    # placement primitives
    # ------------------------------------------------------------------
    def _place_node(self, node: FGNode, coord: Coord, degree: int) -> None:
        assert self._current is not None
        if not self._free(coord):
            raise RuntimeError(f"cell {coord} already occupied")
        self._occupied[coord] = node
        self._on_occupy(coord)
        self._current.node_at[coord] = node
        self.placements[node] = Placement(len(self.layers) - 1, coord)
        self._remaining[node] = degree
        self._realized[node] = 0
        if self._rect is None:
            self._rect = (coord[0], coord[1], coord[0], coord[1])
        else:
            x0, y0, x1, y1 = self._rect
            self._rect = (
                min(x0, coord[0]),
                min(y0, coord[1]),
                max(x1, coord[0]),
                max(y1, coord[1]),
            )

    def _mark_aux(self, cells: List[Coord]) -> None:
        assert self._current is not None
        for cell in cells:
            self._occupied[cell] = "aux"
            self._on_occupy(cell)
            self._current.aux_cells.add(cell)
            if self._rect is None:
                self._rect = (cell[0], cell[1], cell[0], cell[1])
            else:
                x0, y0, x1, y1 = self._rect
                self._rect = (
                    min(x0, cell[0]),
                    min(y0, cell[1]),
                    max(x1, cell[0]),
                    max(y1, cell[1]),
                )

    def _consume(self, node: FGNode, count: int = 1) -> None:
        self._remaining[node] = self._remaining.get(node, 0) - count
        self._realized[node] = self._realized.get(node, 0) + count

    def _node_capacity_left(self, node: FGNode) -> int:
        """Photons left on the node's resource state for more fusions."""
        return self.resource_state.size - self._realized.get(node, 0)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _bfs_path(
        self,
        start: Coord,
        goal_test: Callable[[Coord, Coord], bool],
        max_len: Optional[int] = None,
        avoid: Optional[Set[Coord]] = None,
    ) -> Optional[List[Coord]]:
        """Shortest path from *start* through free cells.

        ``start`` itself may be occupied (it is the source node's cell);
        every interior cell must be free.  Returns the full path including
        both endpoints, or None.
        """
        avoid = avoid or set()
        queue = deque([start])
        parent: Dict[Coord, Optional[Coord]] = {start: None}
        # depth is tracked alongside the BFS instead of being reconstructed
        # by walking the parent chain on every dequeue (O(n^2) per route)
        depth_of: Dict[Coord, int] = {start: 0}
        nbr_table = self._nbr_table
        occupied = self._occupied
        while queue:
            cur = queue.popleft()
            if max_len is not None and depth_of[cur] >= max_len:
                continue
            for nxt in nbr_table[cur]:
                if nxt in parent or nxt in avoid:
                    continue
                if goal_test(nxt, cur):
                    parent[nxt] = cur
                    path = [nxt]
                    back: Optional[Coord] = cur
                    while back is not None:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    return path
                if nxt not in occupied:
                    parent[nxt] = cur
                    depth_of[nxt] = depth_of[cur] + 1
                    queue.append(nxt)
        return None

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def map_fusion_graph(
        self,
        fusion: FusionGraph,
        hints: Optional[Dict[FGNode, Coord]] = None,
    ) -> MappingResult:
        """Map one partition's fusion graph, opening layers as needed.

        ``hints`` suggests a grid location per node (the compiler passes
        the coordinates of cross-partition counterparts so that shuffle
        paths between partitions stay short).
        """
        graph = fusion.graph
        self._hints = hints or {}
        self._open_layer()
        start_layer = len(self.layers) - 1

        edge_fusions = 0
        synthesis_fusions = 0
        routing_fusions = 0
        deferred: List[Tuple[FGNode, FGNode]] = []

        def count_realized(a: FGNode, b: FGNode) -> None:
            nonlocal edge_fusions, synthesis_fusions
            kind = graph.edges[a, b].get("kind", "edge")
            if kind == "chain":
                synthesis_fusions += 1
            else:
                edge_fusions += 1

        pending = list(_edge_order(graph))
        isolated = [v for v in graph.nodes() if graph.degree(v) == 0]
        for node in isolated:
            coord = self._find_free_cell_near(None)
            if coord is None:
                self._close_layer()
                self._open_layer()
                coord = self._find_free_cell_near(None)
                if coord is None:  # pragma: no cover - layer can't be full here
                    raise RuntimeError("empty layer has no free cell")
            self._place_node(node, coord, 0)

        guard = 0
        while pending:
            guard += 1
            if guard > 20 * (len(pending) + graph.number_of_edges() + 1) + 1000:
                raise RuntimeError("mapper failed to make progress")
            spill: List[Tuple[FGNode, FGNode]] = []
            progressed = False
            for (a, b) in pending:
                outcome = self._realize_edge(a, b, graph)
                if outcome == "edge":
                    count_realized(a, b)
                    progressed = True
                elif isinstance(outcome, int):
                    count_realized(a, b)
                    routing_fusions += outcome
                    progressed = True
                elif outcome == "defer":
                    deferred.append((a, b))
                    self._consume_if_placed(a)
                    self._consume_if_placed(b)
                    progressed = True
                else:  # "spill": retry on a fresh layer
                    spill.append((a, b))
            pending = spill
            if pending and not progressed:
                # nothing fit this layer: start a new one
                self._close_layer()
                self._open_layer()
            elif pending:
                self._close_layer()
                self._open_layer()
        self._close_layer()

        return MappingResult(
            layers=self.layers[start_layer:],
            placements=self.placements,
            edge_fusions=edge_fusions,
            synthesis_fusions=synthesis_fusions,
            routing_fusions=routing_fusions,
            deferred_edges=deferred,
        )

    # ------------------------------------------------------------------
    def _consume_if_placed(self, node: FGNode) -> None:
        place = self.placements.get(node)
        if place is not None and place.layer == len(self.layers) - 1:
            self._consume(node)

    def _is_current(self, node: FGNode) -> bool:
        place = self.placements.get(node)
        return place is not None and place.layer == len(self.layers) - 1

    def _realize_edge(
        self, a: FGNode, b: FGNode, graph: nx.Graph
    ) -> Union[str, int]:
        """Attempt one edge.  Returns:

        * ``"edge"`` — realized by direct adjacency (1 fusion);
        * ``int k`` — realized via routing with ``k`` extra fusions;
        * ``"spill"`` — endpoint could not be placed; retry next layer;
        * ``"defer"`` — both endpoints are stuck in old layers; needs
          inter-layer shuffling.
        """
        a_cur, b_cur = self._is_current(a), self._is_current(b)
        a_old = a in self.placements and not a_cur
        b_old = b in self.placements and not b_cur

        if a_old and (b_old or b_cur):
            return "defer"
        if b_old and a_cur:
            return "defer"
        if a_old:  # b unplaced: place b near a's old coordinate, defer edge
            placed = self._place_new_node(
                b, graph, near=self.placements[a].coord, budget_for_edge=False
            )
            return "defer" if placed else "spill"
        if b_old:
            placed = self._place_new_node(
                a, graph, near=self.placements[b].coord, budget_for_edge=False
            )
            return "defer" if placed else "spill"

        if not a_cur and not b_cur:
            # new component (or fresh layer): seed one endpoint
            seed = a if graph.degree(a) >= graph.degree(b) else b
            near = self._hints.get(seed, self._hints.get(a, self._hints.get(b)))
            if not self._place_new_node(seed, graph, near=near, budget_for_edge=False):
                return "spill"
            a_cur, b_cur = self._is_current(a), self._is_current(b)

        if a_cur and b_cur:
            return self._connect_placed(a, b)

        placed_node, new_node = (a, b) if a_cur else (b, a)
        return self._attach_new(placed_node, new_node, graph)

    # ------------------------------------------------------------------
    def _connect_placed(self, a: FGNode, b: FGNode) -> Union[str, int]:
        """Route an edge between two already-placed nodes (same layer)."""
        if self._node_capacity_left(a) <= 0 or self._node_capacity_left(b) <= 0:
            return "defer"
        ca = self.placements[a].coord
        cb = self.placements[b].coord
        if cb in self._neighbors(ca):
            self._consume(a)
            self._consume(b)
            assert self._current is not None
            self._current.paths.append([ca, cb])
            return "edge"
        path = self._bfs_path(
            ca, lambda nxt, cur: nxt == cb, max_len=self.connect_radius
        )
        if path is None:
            return "defer"
        interior = path[1:-1]
        self._mark_aux(interior)
        self._consume(a)
        self._consume(b)
        assert self._current is not None
        self._current.paths.append(path)
        return len(path) - 2  # routing fusions beyond the 1 edge fusion

    def _attach_new(
        self, placed: FGNode, new: FGNode, graph: nx.Graph
    ) -> Union[str, int]:
        """Place *new* adjacent to *placed* (directly or via routing)."""
        if self._node_capacity_left(placed) <= 0:
            # port exhausted by routing overhead; hand to shuffling
            if self._place_new_node(
                new, graph, near=self.placements[placed].coord, budget_for_edge=False
            ):
                return "defer"
            return "spill"
        cp = self.placements[placed].coord
        degree = graph.degree(new)
        after = {
            placed: self._remaining.get(placed, 0) - 1,
            new: degree - 1,
        }
        # direct candidates: free cells adjacent to the anchor
        options: List[Tuple[float, Coord, Optional[List[Coord]]]] = []
        for cell in self._neighbors(cp):
            if self._free(cell):
                score = self._score_candidate([cell], new, cell, after)
                options.append((score, cell, None))
        # routing is triggered when direct mapping is impossible or when
        # every direct option blocks a node (score carries an alpha term)
        need_routing = not options or min(s for s, _, _ in options) >= self.alpha
        if need_routing:
            needed = max(1, min(degree - 1, 3))
            best_so_far = min((s for s, _, _ in options), default=float("inf"))
            for path in self._routed_targets(cp, needed):
                target = path[-1]
                cells = path[1:]
                # the aux-cell penalty and the (monotone) area term bound
                # the score from below; blockage only adds to it, so a
                # path whose bound already loses cannot be the minimum
                penalty = 0.25 * (len(path) - 2)
                bound = float(self._rect_area_with(cells)) + penalty
                if bound > best_so_far:
                    continue
                score = self._score_candidate(cells, new, target, after)
                # prefer direct edges when scores tie: each aux cell costs
                # a fusion, which H does not see
                score += penalty
                options.append((score, target, path))
                if score < best_so_far:
                    best_so_far = score
        if not options:
            return "spill"
        _, best, path = min(options, key=lambda o: (o[0], o[1]))
        self._place_node(new, best, degree)
        self._consume(placed)
        self._consume(new)
        assert self._current is not None
        if path is None:
            self._current.paths.append([cp, best])
            return "edge"
        self._mark_aux(path[1:-1])
        self._current.paths.append(path)
        return len(path) - 2

    def _routed_targets(
        self, start: Coord, needed: int, limit: Optional[int] = None
    ) -> List[List[Coord]]:
        """Up to *limit* shortest free paths to roomy cells around *start*.

        Routing paths have length >= 2 (at least one auxiliary state), as
        in the paper; each returned path includes both endpoints.  The
        default *limit* is the mapper's ``route_targets_limit``.
        """
        if limit is None:
            limit = self.route_targets_limit
        results: List[List[Coord]] = []
        queue = deque([start])
        parent: Dict[Coord, Optional[Coord]] = {start: None}
        depth = {start: 0}
        nbr_table = self._nbr_table
        occupied = self._occupied
        radius = self.route_radius
        while queue and len(results) < limit:
            cur = queue.popleft()
            if depth[cur] >= radius:
                continue
            for nxt in nbr_table[cur]:
                if nxt in parent or nxt in occupied:
                    continue
                parent[nxt] = cur
                depth[nxt] = depth[cur] + 1
                if depth[nxt] >= 2 and self._free_neighbor_count(nxt) >= needed:
                    path = [nxt]
                    back: Optional[Coord] = cur
                    while back is not None:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    results.append(path)
                queue.append(nxt)
        return results

    def _place_new_node(
        self,
        node: FGNode,
        graph: nx.Graph,
        near: Optional[Coord],
        budget_for_edge: bool,
    ) -> bool:
        """Place a node with no in-layer anchor (seed or stub neighbour)."""
        degree = graph.degree(node)
        if near is None:
            near = self._hints.get(node)
        coord = self._find_free_cell_near(near)
        if coord is None:
            return False
        self._place_node(node, coord, degree)
        if budget_for_edge:
            self._consume(node)
        return True

    def _find_free_cell_near(self, near: Optional[Coord]) -> Optional[Coord]:
        rows, cols = self.shape
        if near is None:
            if self._rect is not None:
                # seed new components beside the existing region
                x0, y0, x1, y1 = self._rect
                near = (min(rows - 1, x1 + 2), min(cols - 1, (y0 + y1) // 2))
            else:
                near = (rows // 2, cols // 2)
        if self._free(near) and self._free_neighbor_count(near) >= 1:
            return near
        # deterministic outward scan: candidates are visited in
        # (manhattan distance, row, column) order.  The previous spiral
        # BFS broke distance ties by queue insertion order and measured
        # distance through occupied cells only, so the chosen cell
        # depended on the occupancy history rather than the geometry.
        occupied = self._occupied
        nr, nc = near
        for dist in range(1, rows + cols - 1):
            for dr in range(-dist, dist + 1):
                r = nr + dr
                if r < 0 or r >= rows:
                    continue
                rem = dist - abs(dr)
                c = nc - rem
                if c >= 0 and (r, c) not in occupied:
                    return (r, c)
                if rem and nc + rem < cols and (r, nc + rem) not in occupied:
                    return (r, nc + rem)
        return None


def _edge_order(graph: nx.Graph) -> List[Tuple[FGNode, FGNode]]:
    """Cycle-prioritized BFS edge order (Sec. 6).

    Edges on cycles come before bridges at each BFS step, because tree
    edges are flexible and can be mapped around a committed cycle layout.
    """
    if graph.number_of_edges() == 0:
        return []
    bridges = {frozenset(e) for e in nx.bridges(graph)}
    order: List[Tuple[FGNode, FGNode]] = []
    seen_edges: Set[frozenset] = set()
    visited: Set[FGNode] = set()
    components = sorted(
        nx.connected_components(graph), key=len, reverse=True
    )
    for comp in components:
        start = max(comp, key=lambda v: (graph.degree(v), v))
        visited.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            nbrs = sorted(
                graph.neighbors(u),
                key=lambda w: (
                    frozenset((u, w)) in bridges,  # cycle edges first
                    -graph.degree(w),
                    w,
                ),
            )
            for w in nbrs:
                e = frozenset((u, w))
                if e not in seen_edges:
                    seen_edges.add(e)
                    order.append((u, w))
                if w not in visited:
                    visited.add(w)
                    queue.append(w)
    return order
