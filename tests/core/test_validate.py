"""Tests for post-compilation hardware validation."""

import pytest

from repro.circuit import get_benchmark, qft
from repro.core import compile_circuit
from repro.core.mapping import LayerLayout
from repro.core.validate import (
    ValidationError,
    assert_valid,
    validate_program,
    verify_pattern,
)
from repro.hardware import FOUR_STAR, HardwareConfig


class TestCompiledProgramsAreValid:
    @pytest.mark.parametrize("name", ["QFT", "QAOA", "RCA", "BV"])
    def test_benchmarks_validate(self, name):
        hardware = HardwareConfig.square(16)
        program = compile_circuit(get_benchmark(name, 16), hardware)
        ok, errors = validate_program(program, hardware)
        assert ok, errors[:5]

    def test_extended_layers_validate(self):
        hardware = HardwareConfig(rows=10, cols=10, extension=3)
        program = compile_circuit(qft(8), hardware)
        assert_valid(program, hardware)

    def test_star_resource_state_validates(self):
        hardware = HardwareConfig.square(12, resource_state=FOUR_STAR)
        program = compile_circuit(qft(6), hardware)
        assert_valid(program, hardware)

    def test_tight_grid_validates(self):
        """Heavy spill/shuffle paths still respect photon budgets."""
        hardware = HardwareConfig(rows=5, cols=5)
        program = compile_circuit(qft(6), hardware)
        assert_valid(program, hardware)


class TestViolationsDetected:
    def _program_with_layout(self, layout):
        hardware = HardwareConfig.square(8)
        program = compile_circuit(qft(3), hardware)
        program.layouts = [layout]
        return program, hardware

    def test_wrong_shape(self):
        layout = LayerLayout(index=0, shape=(4, 4))
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert not ok
        assert "shape" in errors[0]

    def test_out_of_bounds_cell(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.node_at[(9, 0)] = ("x", 0)
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("outside" in e for e in errors)

    def test_non_adjacent_path(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.paths.append([(0, 0), (2, 2)])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("non-adjacent" in e for e in errors)

    def test_photon_budget_violation(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.node_at[(3, 3)] = ("x", 0)
        for nbr in [(2, 3), (4, 3), (3, 2), (3, 4)]:
            layout.node_at[nbr] = ("y", nbr[0])
            layout.paths.append([(3, 3), nbr])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("photons" in e for e in errors)

    def test_double_path_through_aux(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.aux_cells.add((1, 1))
        layout.paths.append([(1, 0), (1, 1), (1, 2)])
        layout.paths.append([(0, 1), (1, 1), (2, 1)])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("routing paths" in e for e in errors)

    def test_interior_not_aux(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.paths.append([(0, 0), (0, 1), (0, 2)])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("not aux" in e for e in errors)

    def test_assert_valid_raises(self):
        layout = LayerLayout(index=0, shape=(3, 3))
        program, hardware = self._program_with_layout(layout)
        with pytest.raises(ValidationError):
            assert_valid(program, hardware)


class TestVerifyPattern:
    def test_clifford_circuit_uses_stabilizer_engine(self):
        from repro.circuit.benchmarks import get_benchmark

        circuit = get_benchmark("BV", 10, seed=7)
        report = verify_pattern(circuit)
        assert report.ok is True
        assert report.method == "stabilizer"
        assert report.seconds > 0

    def test_clifford_scales_past_dense_limits(self):
        from repro.circuit.benchmarks import get_benchmark

        circuit = get_benchmark("BV", 48, seed=7)
        report = verify_pattern(circuit)
        assert report.ok is True
        assert report.method == "stabilizer"

    def test_non_clifford_small_uses_statevector(self):
        from repro.circuit.benchmarks import get_benchmark

        circuit = get_benchmark("QFT", 4, seed=7)
        report = verify_pattern(circuit)
        assert report.ok is True
        assert report.method == "statevector"

    def test_non_clifford_large_falls_back_to_static(self):
        """Past the dense limit, auto now degrades to the static flow
        certificate (was: a bare skip) — and the detail must state the
        weaker claim so a static pass cannot read as full equivalence."""
        from repro.circuit.benchmarks import get_benchmark

        circuit = get_benchmark("QFT", 16, seed=7)
        report = verify_pattern(circuit)
        assert report.ok is True
        assert report.method == "static"
        assert "angles not checked" in report.detail

    def test_tampered_clifford_pattern_fails(self):
        """Basis changes (pi/2, X -> Y) that genuinely corrupt the
        pattern must be caught — and the stabilizer verdict must agree
        with the dense oracle node for node.

        Not every tamper is a bug: angle shifts on ``|0>``-input nodes
        are irrelevant, and injected Z byproducts act trivially on BV's
        computational-basis output, so those verify clean in *both*
        engines.
        """
        import math

        from repro.circuit.benchmarks import get_benchmark
        from repro.mbqc.translate import circuit_to_pattern
        from repro.sim.pattern_sim import simulate_pattern
        from repro.sim.statevector import simulate, states_equal_up_to_phase

        circuit = get_benchmark("BV", 8, seed=7)
        reference = simulate(circuit)
        caught = []
        for node in sorted(circuit_to_pattern(circuit).angles):
            pattern = circuit_to_pattern(circuit)
            pattern.angles[node] = pattern.angles[node] + math.pi / 2.0
            report = verify_pattern(circuit, pattern=pattern, seed=3)
            assert report.method == "stabilizer"
            dense_ok = states_equal_up_to_phase(
                reference, simulate_pattern(pattern, seed=3).state
            )
            assert report.ok == dense_ok, f"engines disagree on node {node}"
            if report.ok is False:
                caught.append(node)
        assert caught, "no tamper was caught"

    def test_tampered_dense_pattern_fails(self):
        from repro.circuit.benchmarks import get_benchmark
        from repro.mbqc.translate import circuit_to_pattern

        circuit = get_benchmark("QFT", 3, seed=7)
        caught = []
        for node in sorted(circuit_to_pattern(circuit).angles):
            pattern = circuit_to_pattern(circuit)
            pattern.angles[node] = pattern.angles[node] + 0.3
            report = verify_pattern(circuit, pattern=pattern)
            assert report.method == "statevector"
            if report.ok is False:
                caught.append(node)
        assert caught, "no tamper was caught"
