"""Tests for post-compilation hardware validation."""

import pytest

from repro.circuit import get_benchmark, qft
from repro.core import compile_circuit
from repro.core.mapping import LayerLayout
from repro.core.validate import ValidationError, assert_valid, validate_program
from repro.hardware import FOUR_STAR, HardwareConfig


class TestCompiledProgramsAreValid:
    @pytest.mark.parametrize("name", ["QFT", "QAOA", "RCA", "BV"])
    def test_benchmarks_validate(self, name):
        hardware = HardwareConfig.square(16)
        program = compile_circuit(get_benchmark(name, 16), hardware)
        ok, errors = validate_program(program, hardware)
        assert ok, errors[:5]

    def test_extended_layers_validate(self):
        hardware = HardwareConfig(rows=10, cols=10, extension=3)
        program = compile_circuit(qft(8), hardware)
        assert_valid(program, hardware)

    def test_star_resource_state_validates(self):
        hardware = HardwareConfig.square(12, resource_state=FOUR_STAR)
        program = compile_circuit(qft(6), hardware)
        assert_valid(program, hardware)

    def test_tight_grid_validates(self):
        """Heavy spill/shuffle paths still respect photon budgets."""
        hardware = HardwareConfig(rows=5, cols=5)
        program = compile_circuit(qft(6), hardware)
        assert_valid(program, hardware)


class TestViolationsDetected:
    def _program_with_layout(self, layout):
        hardware = HardwareConfig.square(8)
        program = compile_circuit(qft(3), hardware)
        program.layouts = [layout]
        return program, hardware

    def test_wrong_shape(self):
        layout = LayerLayout(index=0, shape=(4, 4))
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert not ok
        assert "shape" in errors[0]

    def test_out_of_bounds_cell(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.node_at[(9, 0)] = ("x", 0)
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("outside" in e for e in errors)

    def test_non_adjacent_path(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.paths.append([(0, 0), (2, 2)])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("non-adjacent" in e for e in errors)

    def test_photon_budget_violation(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.node_at[(3, 3)] = ("x", 0)
        for nbr in [(2, 3), (4, 3), (3, 2), (3, 4)]:
            layout.node_at[nbr] = ("y", nbr[0])
            layout.paths.append([(3, 3), nbr])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("photons" in e for e in errors)

    def test_double_path_through_aux(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.aux_cells.add((1, 1))
        layout.paths.append([(1, 0), (1, 1), (1, 2)])
        layout.paths.append([(0, 1), (1, 1), (2, 1)])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("routing paths" in e for e in errors)

    def test_interior_not_aux(self):
        layout = LayerLayout(index=0, shape=(8, 8))
        layout.paths.append([(0, 0), (0, 1), (0, 2)])
        program, hardware = self._program_with_layout(layout)
        ok, errors = validate_program(program, hardware)
        assert any("not aux" in e for e in errors)

    def test_assert_valid_raises(self):
        layout = LayerLayout(index=0, shape=(3, 3))
        program, hardware = self._program_with_layout(layout)
        with pytest.raises(ValidationError):
            assert_valid(program, hardware)
