"""Property-based tests: the mapper on random graphs.

Every random fusion graph must map to hardware-valid layouts: full node
coverage, photon budgets respected, paths lattice-contiguous, and every
fusion-graph edge accounted for exactly once (realized in-layer or
handed to shuffling).
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusion_graph import build_fusion_graph
from repro.core.mapping import InLayerMapper
from repro.hardware.resource_state import FOUR_STAR, THREE_LINE


def random_graph(num_nodes: int, edge_prob: float, seed: int) -> nx.Graph:
    g = nx.gnp_random_graph(num_nodes, edge_prob, seed=seed)
    # cap degrees: graph-state nodes of absurd degree are unrealistic and
    # slow; the compiler handles them via chains anyway
    return g


@st.composite
def graphs(draw):
    n = draw(st.integers(3, 18))
    p = draw(st.floats(0.05, 0.35))
    seed = draw(st.integers(0, 10_000))
    return random_graph(n, p, seed)


class TestMapperProperties:
    @given(graphs())
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_map_validly(self, graph):
        degrees = {v: graph.degree(v) for v in graph.nodes()}
        fg = build_fusion_graph(graph, degrees, THREE_LINE)
        mapper = InLayerMapper((10, 10), THREE_LINE)
        result = mapper.map_fusion_graph(fg)

        # 1) coverage: every fusion-graph node has a placement
        assert set(mapper.placements) >= set(fg.graph.nodes())

        # 2) edge accounting: realized + deferred == total
        realized = result.edge_fusions + result.synthesis_fusions
        assert realized + len(result.deferred_edges) == fg.graph.number_of_edges()

        # 3) per-layer structural invariants
        for layout in result.layers:
            assert not (set(layout.node_at) & layout.aux_cells)
            for path in layout.paths:
                for a, b in zip(path, path[1:]):
                    assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

        # 4) photon budget per cell
        for layout in result.layers:
            load = {}
            for path in layout.paths:
                load[path[0]] = load.get(path[0], 0) + 1
                load[path[-1]] = load.get(path[-1], 0) + 1
                for cell in path[1:-1]:
                    load[cell] = load.get(cell, 0) + 2
            for coord in layout.node_at:
                assert load.get(coord, 0) <= THREE_LINE.size

    @given(graphs(), st.sampled_from([THREE_LINE, FOUR_STAR]))
    @settings(max_examples=15, deadline=None)
    def test_fusion_counts_nonnegative_and_bounded(self, graph, rst):
        degrees = {v: graph.degree(v) for v in graph.nodes()}
        fg = build_fusion_graph(graph, degrees, rst)
        mapper = InLayerMapper((12, 12), rst)
        result = mapper.map_fusion_graph(fg)
        assert result.routing_fusions >= 0
        # routing overhead equals total aux cells
        aux = sum(len(l.aux_cells) for l in result.layers)
        assert result.routing_fusions == aux

    @given(st.integers(4, 30), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_paths_always_map(self, length, seed):
        """Paths (wire chains — the dominant pattern shape) never defer
        on a layer big enough to hold them."""
        graph = nx.path_graph(length)
        degrees = {v: graph.degree(v) for v in graph.nodes()}
        fg = build_fusion_graph(graph, degrees, THREE_LINE)
        mapper = InLayerMapper((12, 12), THREE_LINE)
        result = mapper.map_fusion_graph(fg)
        if length <= 40:  # fits comfortably in 144 cells
            assert len(result.layers) == 1
            assert result.deferred_edges == []

    @given(st.integers(3, 8))
    @settings(max_examples=6, deadline=None)
    def test_deterministic(self, n):
        graph = nx.wheel_graph(n)
        degrees = {v: graph.degree(v) for v in graph.nodes()}

        def run():
            fg = build_fusion_graph(graph, degrees, THREE_LINE)
            mapper = InLayerMapper((10, 10), THREE_LINE)
            result = mapper.map_fusion_graph(fg)
            return (
                result.edge_fusions,
                result.routing_fusions,
                len(result.layers),
                sorted(mapper.placements.items()),
            )

        assert run() == run()
