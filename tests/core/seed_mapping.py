"""SEED SNAPSHOT (do not edit): the v0 in-layer mapper, verbatim.

Frozen copy of ``src/repro/core/mapping.py`` from the repo's growth seed
(commit 0dbf3a3).  It predates the packed planes, the deterministic
tie-break fix and the routing/scoring overhauls, so its *outputs* are
not compared against the live path — ``benchmarks/bench_mapping_v2.py``
times it as the speedup-gate baseline, the same role the seed CHP
engine in ``tests/sim/reference_stabilizer.py`` plays for
``bench_stabilizer.py``.

Original module docstring follows.

Fusion mapping and routing (paper Sec. 6): in-layer heuristic search.

Embeds the irregular fusion graph into the regular grid of one (possibly
extended) physical layer after another.  Edges are traversed in
cycle-prioritized BFS order; each edge is realized either by placing the
new endpoint on an adjacent cell or by *fusion routing* — a path of
auxiliary resource states winding along the lattice (each auxiliary cell
burns two photons and can carry only one path for small resource states).
Candidate placements are scored with the paper's cost function

    ``H = occupied_area + #partially_blocked + alpha * #totally_blocked``

where a node is blocked when its remaining unmapped edges exceed its free
adjacent cells.  Nodes whose edges cannot all be realized within a layer
are *incomplete*; their leftover edges are handed to inter-layer
shuffling (:mod:`repro.core.shuffling`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.fusion_graph import FGNode, FusionGraph
from repro.hardware.resource_state import ResourceStateType

Coord = Tuple[int, int]


@dataclass
class LayerLayout:
    """One mapped (extended) physical layer, for metrics and rendering."""

    index: int
    shape: Tuple[int, int]
    node_at: Dict[Coord, FGNode] = field(default_factory=dict)
    aux_cells: Set[Coord] = field(default_factory=set)
    paths: List[List[Coord]] = field(default_factory=list)
    incomplete: Set[FGNode] = field(default_factory=set)

    @property
    def occupied(self) -> int:
        return len(self.node_at) + len(self.aux_cells)


@dataclass(frozen=True)
class Placement:
    layer: int
    coord: Coord


@dataclass
class MappingResult:
    """Outcome of mapping one partition's fusion graph."""

    layers: List[LayerLayout]
    placements: Dict[FGNode, Placement]
    edge_fusions: int = 0
    synthesis_fusions: int = 0
    routing_fusions: int = 0
    deferred_edges: List[Tuple[FGNode, FGNode]] = field(default_factory=list)


class InLayerMapper:
    """Stateful mapper: one instance maps all partitions of a program."""

    def __init__(
        self,
        shape: Tuple[int, int],
        resource_state: ResourceStateType,
        alpha: Optional[float] = None,
        route_radius: int = 6,
    ):
        rows, cols = shape
        if rows < 2 or cols < 2:
            raise ValueError("layer must be at least 2x2")
        self.shape = shape
        self.resource_state = resource_state
        # paper: alpha > 1, typically the max degree of the physical layer
        self.alpha = float(alpha) if alpha is not None else 4.0
        self.route_radius = route_radius
        self.layers: List[LayerLayout] = []
        self.placements: Dict[FGNode, Placement] = {}
        self._hints: Dict[FGNode, Coord] = {}
        self._reset_layer_state()

    # ------------------------------------------------------------------
    # layer lifecycle
    # ------------------------------------------------------------------
    def _reset_layer_state(self) -> None:
        self._occupied: Dict[Coord, object] = {}
        self._remaining: Dict[FGNode, int] = {}
        self._realized: Dict[FGNode, int] = {}
        self._rect: Optional[Tuple[int, int, int, int]] = None
        self._current: Optional[LayerLayout] = None

    def _open_layer(self) -> LayerLayout:
        layout = LayerLayout(index=len(self.layers), shape=self.shape)
        self.layers.append(layout)
        self._reset_layer_state()
        self._current = layout
        return layout

    def _close_layer(self) -> None:
        if self._current is None:
            return
        for coord, node in self._current.node_at.items():
            if self._remaining.get(node, 0) > 0:
                self._current.incomplete.add(node)
        self._current = None

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _in_bounds(self, coord: Coord) -> bool:
        r, c = coord
        return 0 <= r < self.shape[0] and 0 <= c < self.shape[1]

    def _neighbors(self, coord: Coord) -> List[Coord]:
        r, c = coord
        return [
            p
            for p in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1))
            if self._in_bounds(p)
        ]

    def _free(self, coord: Coord) -> bool:
        return coord not in self._occupied

    def _free_neighbor_count(self, coord: Coord) -> int:
        return sum(1 for p in self._neighbors(coord) if self._free(p))

    # ------------------------------------------------------------------
    # cost function H
    # ------------------------------------------------------------------
    def _rect_area_with(self, extra: List[Coord]) -> int:
        coords = extra
        rect = self._rect
        if rect is None:
            xs = [c[0] for c in coords]
            ys = [c[1] for c in coords]
            if not xs:
                return 0
            return (max(xs) - min(xs) + 1) * (max(ys) - min(ys) + 1)
        x0, y0, x1, y1 = rect
        for (r, c) in coords:
            x0, y0 = min(x0, r), min(y0, c)
            x1, y1 = max(x1, r), max(y1, c)
        return (x1 - x0 + 1) * (y1 - y0 + 1)

    def _blockage_score(self, node: FGNode, coord: Coord, occupied_extra) -> float:
        """Blockage contribution of one placed node given extra occupancy."""
        remaining = self._remaining.get(node, 0)
        if remaining <= 0:
            return 0.0
        free = sum(
            1
            for p in self._neighbors(coord)
            if self._free(p) and p not in occupied_extra
        )
        if free == 0:
            return self.alpha
        if remaining > free:
            return 1.0
        return 0.0

    def _score_candidate(
        self,
        new_cells: List[Coord],
        new_node: Optional[FGNode],
        node_cell: Optional[Coord],
        remaining_after: Dict[FGNode, int],
    ) -> float:
        """H after hypothetically occupying *new_cells*.

        Only nodes adjacent to the new cells (plus the new node) can
        change blockage, so the score is the area term plus local
        blockage deltas; the constant global part cancels in comparisons.
        """
        occupied_extra = set(new_cells)
        score = float(self._rect_area_with(new_cells))
        affected: Set[Tuple[FGNode, Coord]] = set()
        for cell in new_cells:
            for p in self._neighbors(cell):
                occ = self._occupied.get(p)
                if isinstance(occ, tuple) and occ in self._remaining:
                    place = self.placements.get(occ)
                    if place is not None and place.layer == len(self.layers) - 1:
                        affected.add((occ, place.coord))
        saved = dict(self._remaining)
        try:
            self._remaining.update(remaining_after)
            for node, coord in affected:
                score += self._blockage_score(node, coord, occupied_extra)
            if new_node is not None and node_cell is not None:
                score += self._blockage_score(new_node, node_cell, occupied_extra)
        finally:
            self._remaining = saved
        return score

    # ------------------------------------------------------------------
    # placement primitives
    # ------------------------------------------------------------------
    def _place_node(self, node: FGNode, coord: Coord, degree: int) -> None:
        assert self._current is not None
        if not self._free(coord):
            raise RuntimeError(f"cell {coord} already occupied")
        self._occupied[coord] = node
        self._current.node_at[coord] = node
        self.placements[node] = Placement(len(self.layers) - 1, coord)
        self._remaining[node] = degree
        self._realized[node] = 0
        if self._rect is None:
            self._rect = (coord[0], coord[1], coord[0], coord[1])
        else:
            x0, y0, x1, y1 = self._rect
            self._rect = (
                min(x0, coord[0]),
                min(y0, coord[1]),
                max(x1, coord[0]),
                max(y1, coord[1]),
            )

    def _mark_aux(self, cells: List[Coord]) -> None:
        assert self._current is not None
        for cell in cells:
            self._occupied[cell] = "aux"
            self._current.aux_cells.add(cell)
            if self._rect is None:
                self._rect = (cell[0], cell[1], cell[0], cell[1])
            else:
                x0, y0, x1, y1 = self._rect
                self._rect = (
                    min(x0, cell[0]),
                    min(y0, cell[1]),
                    max(x1, cell[0]),
                    max(y1, cell[1]),
                )

    def _consume(self, node: FGNode, count: int = 1) -> None:
        self._remaining[node] = self._remaining.get(node, 0) - count
        self._realized[node] = self._realized.get(node, 0) + count

    def _node_capacity_left(self, node: FGNode) -> int:
        """Photons left on the node's resource state for more fusions."""
        return self.resource_state.size - self._realized.get(node, 0)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _bfs_path(
        self,
        start: Coord,
        goal_test,
        max_len: Optional[int] = None,
        avoid: Optional[Set[Coord]] = None,
    ) -> Optional[List[Coord]]:
        """Shortest path from *start* through free cells.

        ``start`` itself may be occupied (it is the source node's cell);
        every interior cell must be free.  Returns the full path including
        both endpoints, or None.
        """
        avoid = avoid or set()
        queue = deque([start])
        parent: Dict[Coord, Optional[Coord]] = {start: None}
        while queue:
            cur = queue.popleft()
            depth = 0
            # reconstruct depth lazily only when needed for max_len
            if max_len is not None:
                d, p = 0, cur
                while parent[p] is not None:
                    p = parent[p]
                    d += 1
                depth = d
                if depth >= max_len:
                    continue
            for nxt in self._neighbors(cur):
                if nxt in parent or nxt in avoid:
                    continue
                if goal_test(nxt, cur):
                    parent[nxt] = cur
                    path = [nxt]
                    back: Optional[Coord] = cur
                    while back is not None:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    return path
                if self._free(nxt):
                    parent[nxt] = cur
                    queue.append(nxt)
        return None

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def map_fusion_graph(
        self,
        fusion: FusionGraph,
        hints: Optional[Dict[FGNode, Coord]] = None,
    ) -> MappingResult:
        """Map one partition's fusion graph, opening layers as needed.

        ``hints`` suggests a grid location per node (the compiler passes
        the coordinates of cross-partition counterparts so that shuffle
        paths between partitions stay short).
        """
        graph = fusion.graph
        self._hints = hints or {}
        self._open_layer()
        start_layer = len(self.layers) - 1

        edge_fusions = 0
        synthesis_fusions = 0
        routing_fusions = 0
        deferred: List[Tuple[FGNode, FGNode]] = []

        def count_realized(a: FGNode, b: FGNode) -> None:
            nonlocal edge_fusions, synthesis_fusions
            kind = graph.edges[a, b].get("kind", "edge")
            if kind == "chain":
                synthesis_fusions += 1
            else:
                edge_fusions += 1

        pending = list(_edge_order(graph))
        isolated = [v for v in graph.nodes() if graph.degree(v) == 0]
        for node in isolated:
            coord = self._find_free_cell_near(None)
            if coord is None:
                self._close_layer()
                self._open_layer()
                coord = self._find_free_cell_near(None)
                if coord is None:  # pragma: no cover - layer can't be full here
                    raise RuntimeError("empty layer has no free cell")
            self._place_node(node, coord, 0)

        guard = 0
        while pending:
            guard += 1
            if guard > 20 * (len(pending) + graph.number_of_edges() + 1) + 1000:
                raise RuntimeError("mapper failed to make progress")
            spill: List[Tuple[FGNode, FGNode]] = []
            progressed = False
            for (a, b) in pending:
                outcome = self._realize_edge(a, b, graph)
                if outcome == "edge":
                    count_realized(a, b)
                    progressed = True
                elif isinstance(outcome, int):
                    count_realized(a, b)
                    routing_fusions += outcome
                    progressed = True
                elif outcome == "defer":
                    deferred.append((a, b))
                    self._consume_if_placed(a)
                    self._consume_if_placed(b)
                    progressed = True
                else:  # "spill": retry on a fresh layer
                    spill.append((a, b))
            pending = spill
            if pending and not progressed:
                # nothing fit this layer: start a new one
                self._close_layer()
                self._open_layer()
            elif pending:
                self._close_layer()
                self._open_layer()
        self._close_layer()

        return MappingResult(
            layers=self.layers[start_layer:],
            placements=self.placements,
            edge_fusions=edge_fusions,
            synthesis_fusions=synthesis_fusions,
            routing_fusions=routing_fusions,
            deferred_edges=deferred,
        )

    # ------------------------------------------------------------------
    def _consume_if_placed(self, node: FGNode) -> None:
        place = self.placements.get(node)
        if place is not None and place.layer == len(self.layers) - 1:
            self._consume(node)

    def _is_current(self, node: FGNode) -> bool:
        place = self.placements.get(node)
        return place is not None and place.layer == len(self.layers) - 1

    def _realize_edge(self, a: FGNode, b: FGNode, graph: nx.Graph):
        """Attempt one edge.  Returns:

        * ``"edge"`` — realized by direct adjacency (1 fusion);
        * ``int k`` — realized via routing with ``k`` extra fusions;
        * ``"spill"`` — endpoint could not be placed; retry next layer;
        * ``"defer"`` — both endpoints are stuck in old layers; needs
          inter-layer shuffling.
        """
        a_cur, b_cur = self._is_current(a), self._is_current(b)
        a_old = a in self.placements and not a_cur
        b_old = b in self.placements and not b_cur

        if a_old and (b_old or b_cur):
            return "defer"
        if b_old and a_cur:
            return "defer"
        if a_old:  # b unplaced: place b near a's old coordinate, defer edge
            placed = self._place_new_node(
                b, graph, near=self.placements[a].coord, budget_for_edge=False
            )
            return "defer" if placed else "spill"
        if b_old:
            placed = self._place_new_node(
                a, graph, near=self.placements[b].coord, budget_for_edge=False
            )
            return "defer" if placed else "spill"

        if not a_cur and not b_cur:
            # new component (or fresh layer): seed one endpoint
            seed = a if graph.degree(a) >= graph.degree(b) else b
            near = self._hints.get(seed, self._hints.get(a, self._hints.get(b)))
            if not self._place_new_node(seed, graph, near=near, budget_for_edge=False):
                return "spill"
            a_cur, b_cur = self._is_current(a), self._is_current(b)

        if a_cur and b_cur:
            return self._connect_placed(a, b)

        placed_node, new_node = (a, b) if a_cur else (b, a)
        return self._attach_new(placed_node, new_node, graph)

    # ------------------------------------------------------------------
    def _connect_placed(self, a: FGNode, b: FGNode):
        """Route an edge between two already-placed nodes (same layer)."""
        if self._node_capacity_left(a) <= 0 or self._node_capacity_left(b) <= 0:
            return "defer"
        ca = self.placements[a].coord
        cb = self.placements[b].coord
        if cb in self._neighbors(ca):
            self._consume(a)
            self._consume(b)
            assert self._current is not None
            self._current.paths.append([ca, cb])
            return "edge"
        path = self._bfs_path(ca, lambda nxt, cur: nxt == cb)
        if path is None:
            return "defer"
        interior = path[1:-1]
        self._mark_aux(interior)
        self._consume(a)
        self._consume(b)
        assert self._current is not None
        self._current.paths.append(path)
        return len(path) - 2  # routing fusions beyond the 1 edge fusion

    def _attach_new(self, placed: FGNode, new: FGNode, graph: nx.Graph):
        """Place *new* adjacent to *placed* (directly or via routing)."""
        if self._node_capacity_left(placed) <= 0:
            # port exhausted by routing overhead; hand to shuffling
            if self._place_new_node(
                new, graph, near=self.placements[placed].coord, budget_for_edge=False
            ):
                return "defer"
            return "spill"
        cp = self.placements[placed].coord
        degree = graph.degree(new)
        after = {
            placed: self._remaining.get(placed, 0) - 1,
            new: degree - 1,
        }
        # direct candidates: free cells adjacent to the anchor
        options: List[Tuple[float, Coord, Optional[List[Coord]]]] = []
        for cell in self._neighbors(cp):
            if self._free(cell):
                score = self._score_candidate([cell], new, cell, after)
                options.append((score, cell, None))
        # routing is triggered when direct mapping is impossible or when
        # every direct option blocks a node (score carries an alpha term)
        need_routing = not options or min(s for s, _, _ in options) >= self.alpha
        if need_routing:
            needed = max(1, min(degree - 1, 3))
            for path in self._routed_targets(cp, needed):
                target = path[-1]
                cells = path[1:]
                score = self._score_candidate(cells, new, target, after)
                # prefer direct edges when scores tie: each aux cell costs
                # a fusion, which H does not see
                score += 0.25 * (len(path) - 2)
                options.append((score, target, path))
        if not options:
            return "spill"
        _, best, path = min(options, key=lambda o: (o[0], o[1]))
        self._place_node(new, best, degree)
        self._consume(placed)
        self._consume(new)
        assert self._current is not None
        if path is None:
            self._current.paths.append([cp, best])
            return "edge"
        self._mark_aux(path[1:-1])
        self._current.paths.append(path)
        return len(path) - 2

    def _routed_targets(
        self, start: Coord, needed: int, limit: int = 6
    ) -> List[List[Coord]]:
        """Up to *limit* shortest free paths to roomy cells around *start*.

        Routing paths have length >= 2 (at least one auxiliary state), as
        in the paper; each returned path includes both endpoints.
        """
        results: List[List[Coord]] = []
        queue = deque([start])
        parent: Dict[Coord, Optional[Coord]] = {start: None}
        depth = {start: 0}
        while queue and len(results) < limit:
            cur = queue.popleft()
            if depth[cur] >= self.route_radius:
                continue
            for nxt in self._neighbors(cur):
                if nxt in parent or not self._free(nxt):
                    continue
                parent[nxt] = cur
                depth[nxt] = depth[cur] + 1
                if depth[nxt] >= 2 and self._free_neighbor_count(nxt) >= needed:
                    path = [nxt]
                    back: Optional[Coord] = cur
                    while back is not None:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    results.append(path)
                queue.append(nxt)
        return results

    def _place_new_node(
        self,
        node: FGNode,
        graph: nx.Graph,
        near: Optional[Coord],
        budget_for_edge: bool,
    ) -> bool:
        """Place a node with no in-layer anchor (seed or stub neighbour)."""
        degree = graph.degree(node)
        if near is None:
            near = self._hints.get(node)
        coord = self._find_free_cell_near(near)
        if coord is None:
            return False
        self._place_node(node, coord, degree)
        if budget_for_edge:
            self._consume(node)
        return True

    def _find_free_cell_near(self, near: Optional[Coord]) -> Optional[Coord]:
        rows, cols = self.shape
        if near is None:
            if self._rect is not None:
                # seed new components beside the existing region
                x0, y0, x1, y1 = self._rect
                near = (min(rows - 1, x1 + 2), min(cols - 1, (y0 + y1) // 2))
            else:
                near = (rows // 2, cols // 2)
        if self._free(near) and self._free_neighbor_count(near) >= 1:
            return near
        # spiral BFS outward over all cells (not only free-connected ones)
        queue = deque([near])
        seen = {near}
        while queue:
            cur = queue.popleft()
            for nxt in self._neighbors(cur):
                if nxt in seen:
                    continue
                seen.add(nxt)
                if self._free(nxt):
                    return nxt
                queue.append(nxt)
        return None


def _edge_order(graph: nx.Graph) -> List[Tuple[FGNode, FGNode]]:
    """Cycle-prioritized BFS edge order (Sec. 6).

    Edges on cycles come before bridges at each BFS step, because tree
    edges are flexible and can be mapped around a committed cycle layout.
    """
    if graph.number_of_edges() == 0:
        return []
    bridges = {frozenset(e) for e in nx.bridges(graph)}
    order: List[Tuple[FGNode, FGNode]] = []
    seen_edges: Set[frozenset] = set()
    visited: Set[FGNode] = set()
    components = sorted(
        nx.connected_components(graph), key=len, reverse=True
    )
    for comp in components:
        start = max(comp, key=lambda v: (graph.degree(v), v))
        visited.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            nbrs = sorted(
                graph.neighbors(u),
                key=lambda w: (
                    frozenset((u, w)) in bridges,  # cycle edges first
                    -graph.degree(w),
                    w,
                ),
            )
            for w in nbrs:
                e = frozenset((u, w))
                if e not in seen_edges:
                    seen_edges.add(e)
                    order.append((u, w))
                if w not in visited:
                    visited.add(w)
                    queue.append(w)
    return order
