"""Tests for graph states and the fusion rule (verified numerically)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mbqc.graph_state import (
    disjoint_union,
    fuse,
    graph_state_vector,
    grid_graph,
    linear_graph,
    max_degree,
    neighborhood,
    relabeled,
    ring_graph,
    star_graph,
    z_measure,
)


def _pauli_op(n, which, qubit):
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    z = np.diag([1.0, -1.0]).astype(complex)
    m = {"x": x, "z": z}[which]
    op = np.ones((1, 1), dtype=complex)
    for q in range(n):
        op = np.kron(m if q == qubit else np.eye(2, dtype=complex), op)
    return op


def fusion_reference(g, c, d):
    """Dense-simulation reference: project XZ/ZX (+1,+1) and factor out."""
    order = tuple(sorted(g.nodes()))
    psi = graph_state_vector(g, order=order)
    n = len(order)
    ic, id_ = order.index(c), order.index(d)
    p1 = (np.eye(2**n) + _pauli_op(n, "x", ic) @ _pauli_op(n, "z", id_)) / 2
    p2 = (np.eye(2**n) + _pauli_op(n, "z", ic) @ _pauli_op(n, "x", id_)) / 2
    phi = p2 @ (p1 @ psi)
    phi = phi / np.linalg.norm(phi)
    keep = [i for i in range(n) if i not in (ic, id_)]
    tensor = phi.reshape((2,) * n)
    perm = [n - 1 - i for i in list(reversed(keep)) + [id_, ic]]
    t = np.transpose(tensor, axes=perm).reshape(2 ** len(keep), 4)
    u, s, _ = np.linalg.svd(t)
    assert s[1] < 1e-9, "post-fusion state not factorized"
    return u[:, 0], [order[i] for i in keep]


class TestGraphBuilders:
    def test_linear(self):
        g = linear_graph(4)
        assert g.number_of_edges() == 3
        assert max_degree(g) == 2

    def test_star(self):
        g = star_graph(5)
        assert max_degree(g) == 5

    def test_ring(self):
        g = ring_graph(6)
        assert all(d == 2 for _, d in g.degree())

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert max_degree(g) == 4

    def test_max_degree_empty(self):
        assert max_degree(nx.Graph()) == 0

    def test_neighborhood(self):
        g = linear_graph(5)
        assert neighborhood(g, [2]) == {1, 3}
        assert neighborhood(g, [1, 2]) == {0, 3}


class TestFusionRule:
    def test_line_line_merge(self):
        """Paper Fig. 2: ABC + DEF fused at (C, D) gives line A-B-E-F."""
        g = disjoint_union(linear_graph(3), relabeled(linear_graph(3), 10))
        merged = fuse(g, 2, 10)
        expected = {frozenset((0, 1)), frozenset((1, 11)), frozenset((11, 12))}
        assert {frozenset(e) for e in merged.edges()} == expected

    def test_photon_loss(self):
        g = disjoint_union(linear_graph(3), relabeled(linear_graph(3), 10))
        merged = fuse(g, 2, 10)
        assert merged.number_of_nodes() == g.number_of_nodes() - 2

    def test_self_fusion_rejected(self):
        with pytest.raises(ValueError):
            fuse(linear_graph(3), 1, 1)

    def test_adjacent_fusion_rejected(self):
        with pytest.raises(ValueError):
            fuse(linear_graph(3), 0, 1)

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            fuse(linear_graph(3), 0, 99)

    def test_degree_increment_pattern(self):
        """Fig. 7a: fusing a leaf with a 2-degree node raises the degree."""
        star = star_graph(2)  # center 0, leaves 1, 2
        line = relabeled(linear_graph(3), 10)
        g = disjoint_union(star, line)
        merged = fuse(g, 1, 11)  # leaf 1 with middle qubit 11
        assert merged.degree(0) == 1 + 2  # lost leaf, gained two

    def test_graph_connection_pattern(self):
        """Fig. 7c: fusing two leaves adds one edge between their owners."""
        a = linear_graph(2)  # 0-1
        b = relabeled(linear_graph(2), 10)  # 10-11
        merged = fuse(disjoint_union(a, b), 1, 10)
        assert {frozenset(e) for e in merged.edges()} == {frozenset((0, 11))}

    @pytest.mark.parametrize(
        "g1,g2,c,d",
        [
            (linear_graph(3), linear_graph(3), 2, 0),
            (linear_graph(2), linear_graph(2), 1, 0),
            (star_graph(3), linear_graph(3), 1, 1),
            (ring_graph(4), linear_graph(3), 0, 0),
            (star_graph(3), star_graph(3), 1, 0),
        ],
    )
    def test_against_dense_simulation(self, g1, g2, c, d):
        """The bipartite-toggle rule equals the physical XZ/ZX projection."""
        g = disjoint_union(g1, relabeled(g2, 100))
        rest, keep_order = fusion_reference(g, c, d + 100)
        merged = fuse(g, c, d + 100)
        target = graph_state_vector(merged, order=tuple(keep_order))
        assert abs(np.vdot(rest, target)) == pytest.approx(1.0, abs=1e-8)

    def test_existing_edge_toggles(self):
        """Fusing onto an existing edge erases it (CZ involution)."""
        # triangle 0-1-2 plus pendant pair 3-4; fuse 2 with 3:
        g = nx.Graph([(0, 1), (1, 2), (2, 0), (3, 4)])
        merged = fuse(g, 2, 3)
        # N(2)={0,1}, N(3)={4}: toggles (0,4),(1,4); edge 0-1 remains
        assert {frozenset(e) for e in merged.edges()} == {
            frozenset((0, 1)),
            frozenset((0, 4)),
            frozenset((1, 4)),
        }


class TestZMeasure:
    def test_removes_node(self):
        g = z_measure(linear_graph(3), 1)
        assert g.number_of_edges() == 0
        assert g.number_of_nodes() == 2

    def test_missing_node_rejected(self):
        with pytest.raises(ValueError):
            z_measure(linear_graph(2), 7)

    def test_ring_tailored_to_line(self):
        """Paper Sec. 5: removing one ring qubit leaves a line."""
        g = z_measure(ring_graph(4), 0)
        degrees = sorted(d for _, d in g.degree())
        assert degrees == [1, 1, 2]


class TestGraphStateVector:
    def test_single_plus(self):
        g = nx.Graph()
        g.add_node(0)
        state = graph_state_vector(g)
        assert np.allclose(state, [1 / np.sqrt(2)] * 2)

    def test_two_qubit_graph_state(self):
        state = graph_state_vector(linear_graph(2))
        expected = np.array([1, 1, 1, -1], dtype=complex) / 2
        assert np.allclose(state, expected)

    def test_input_state_override(self):
        g = nx.Graph()
        g.add_node(0)
        state = graph_state_vector(g, input_states={0: [1, 0]})
        assert np.allclose(state, [1, 0])

    def test_order_mismatch_rejected(self):
        with pytest.raises(ValueError):
            graph_state_vector(linear_graph(2), order=(0, 5))

    @given(st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_normalized(self, n):
        state = graph_state_vector(linear_graph(n))
        assert np.linalg.norm(state) == pytest.approx(1.0)


class TestDisjointUnion:
    def test_shared_nodes_rejected(self):
        with pytest.raises(ValueError):
            disjoint_union(linear_graph(2), linear_graph(3))

    def test_preserves_all(self):
        g = disjoint_union(linear_graph(2), relabeled(ring_graph(3), 10))
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4
