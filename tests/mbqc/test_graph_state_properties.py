"""Hypothesis property tests for graph states and fusion."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mbqc.graph_state import (
    disjoint_union,
    fuse,
    max_degree,
    relabeled,
    z_measure,
)


@st.composite
def two_graphs_with_fusion_qubits(draw):
    n1 = draw(st.integers(2, 8))
    n2 = draw(st.integers(2, 8))
    p = draw(st.floats(0.2, 0.8))
    seed = draw(st.integers(0, 9999))
    g1 = nx.gnp_random_graph(n1, p, seed=seed)
    g2 = nx.gnp_random_graph(n2, p, seed=seed + 1)
    c = draw(st.integers(0, n1 - 1))
    d = draw(st.integers(0, n2 - 1))
    return g1, g2, c, d


class TestFusionProperties:
    @given(two_graphs_with_fusion_qubits())
    @settings(max_examples=40, deadline=None)
    def test_fusion_loses_exactly_two_photons(self, case):
        g1, g2, c, d = case
        g = disjoint_union(g1, relabeled(g2, 100))
        merged = fuse(g, c, d + 100)
        assert merged.number_of_nodes() == g.number_of_nodes() - 2
        assert c not in merged
        assert d + 100 not in merged

    @given(two_graphs_with_fusion_qubits())
    @settings(max_examples=40, deadline=None)
    def test_leaf_fusion_degree_transfer(self, case):
        """Fusing a leaf c with d hands N(d) to c's owner."""
        g1, g2, _, d = case
        # make c a fresh leaf attached to node 0
        g1 = g1.copy()
        leaf = max(g1.nodes()) + 1
        g1.add_edge(0, leaf)
        g = disjoint_union(g1, relabeled(g2, 100))
        before = g.degree(0)
        nd = g.degree(d + 100)
        merged = fuse(g, leaf, d + 100)
        # node 0 loses the leaf and toggles edges to N(d): if none of
        # N(d) was already adjacent, it gains exactly nd edges
        expected_new = {
            w for w in g.neighbors(d + 100) if w != 0 and not g.has_edge(0, w)
        }
        expected_removed = {
            w for w in g.neighbors(d + 100) if w != 0 and g.has_edge(0, w)
        }
        assert merged.degree(0) == (
            before - 1 + len(expected_new) - len(expected_removed)
        )

    @given(two_graphs_with_fusion_qubits())
    @settings(max_examples=30, deadline=None)
    def test_fusion_commutes_with_relabeling(self, case):
        g1, g2, c, d = case
        g = disjoint_union(g1, relabeled(g2, 100))
        merged = fuse(g, c, d + 100)
        shifted = nx.relabel_nodes(g, {v: v + 1000 for v in g.nodes()})
        merged_shifted = fuse(shifted, c + 1000, d + 100 + 1000)
        assert nx.is_isomorphic(merged, merged_shifted)

    @given(st.integers(3, 10), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_z_measure_only_local_damage(self, n, seed):
        g = nx.gnp_random_graph(n, 0.4, seed=seed)
        node = seed % n
        removed = z_measure(g, node)
        # all other adjacencies untouched
        for u, v in g.edges():
            if node not in (u, v):
                assert removed.has_edge(u, v)
        assert removed.number_of_nodes() == n - 1

    @given(st.integers(2, 10))
    @settings(max_examples=10, deadline=None)
    def test_max_degree_matches_networkx(self, n):
        g = nx.gnp_random_graph(n, 0.5, seed=n)
        expected = max((d for _, d in g.degree()), default=0)
        assert max_degree(g) == expected
