"""Tests for the MeasurementPattern data model."""

import math

import networkx as nx
import pytest

from repro.mbqc.pattern import MeasurementPattern


def make_pattern(**overrides):
    graph = nx.path_graph(3)
    defaults = dict(
        graph=graph,
        inputs=(0,),
        outputs=(2,),
        angles={0: 0.0, 1: math.pi / 4},
        x_deps={1: frozenset({0})},
        z_deps={},
        sequence=(0, 1),
    )
    defaults.update(overrides)
    return MeasurementPattern(**defaults)


class TestValidation:
    def test_valid(self):
        p = make_pattern()
        assert p.num_nodes == 3
        assert p.num_edges == 2

    def test_missing_angle_rejected(self):
        with pytest.raises(ValueError, match="angles"):
            make_pattern(angles={0: 0.0})

    def test_extra_angle_rejected(self):
        with pytest.raises(ValueError, match="angles"):
            make_pattern(angles={0: 0.0, 1: 0.0, 2: 0.0})

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError, match="inputs"):
            make_pattern(inputs=(9,))

    def test_unknown_output_rejected(self):
        with pytest.raises(ValueError, match="outputs"):
            make_pattern(outputs=(9,), angles={0: 0.0, 1: 0.0, 2: 0.0})

    def test_dep_on_output_rejected(self):
        with pytest.raises(ValueError, match="measured"):
            make_pattern(x_deps={1: frozenset({2})})

    def test_bad_sequence_rejected(self):
        with pytest.raises(ValueError, match="sequence"):
            make_pattern(sequence=(0,))


class TestAdaptivity:
    def test_pauli_angle_not_adaptive(self):
        p = make_pattern(angles={0: 0.0, 1: math.pi / 2}, x_deps={1: frozenset({0})})
        assert not p.is_adaptive(1)

    def test_non_pauli_with_dep_adaptive(self):
        p = make_pattern()
        assert p.is_adaptive(1)

    def test_non_pauli_without_dep_not_adaptive(self):
        p = make_pattern(x_deps={})
        assert not p.is_adaptive(1)

    def test_output_never_adaptive(self):
        p = make_pattern()
        assert not p.is_adaptive(2)

    def test_effective_x_deps_filtered(self):
        p = make_pattern(angles={0: 0.0, 1: math.pi}, x_deps={1: frozenset({0})})
        assert p.effective_x_deps(1) == frozenset()

    def test_effective_x_deps_kept(self):
        p = make_pattern()
        assert p.effective_x_deps(1) == frozenset({0})


class TestOrdering:
    def test_measurement_order_uses_sequence(self):
        p = make_pattern()
        assert p.measurement_order() == (0, 1)

    def test_measurement_order_topological_fallback(self):
        p = make_pattern(sequence=())
        order = p.measurement_order()
        assert order.index(0) < order.index(1)

    def test_dependency_dag_edges(self):
        p = make_pattern()
        dag = p.dependency_dag()
        assert dag.has_edge(0, 1)

    def test_summary_mentions_counts(self):
        text = make_pattern().summary()
        assert "nodes=3" in text
        assert "adaptive=1" in text
