"""End-to-end correctness of circuit -> pattern translation.

The strongest test in the project: executing the translated measurement
pattern (with adaptive angles and byproduct corrections) must reproduce
the circuit's output state exactly, for every random outcome branch.
"""

import math

import pytest

from repro.circuit import Circuit, bernstein_vazirani, qaoa_maxcut, qft, ripple_carry_adder
from repro.mbqc import circuit_to_pattern
from repro.sim import simulate, simulate_pattern, states_equal_up_to_phase
from repro.sim.pattern_sim import PatternSimulator
from tests.conftest import random_circuit


def assert_pattern_equivalent(circuit, seeds=(0, 1, 2)):
    psi = simulate(circuit)
    pattern = circuit_to_pattern(circuit)
    for seed in seeds:
        result = simulate_pattern(pattern, seed=seed)
        assert states_equal_up_to_phase(psi, result.state), (
            f"pattern output diverged (seed {seed}) for "
            f"{[str(g) for g in circuit]}"
        )


class TestSingleGates:
    @pytest.mark.parametrize("name", ["h", "x", "y", "z", "s", "t", "sx"])
    def test_named_1q(self, name):
        assert_pattern_equivalent(Circuit(1).add(name, 0))

    @pytest.mark.parametrize("theta", [0.3, math.pi / 4, -0.9])
    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    def test_rotations(self, name, theta):
        assert_pattern_equivalent(Circuit(1).add(name, 0, params=(theta,)))

    def test_cz(self):
        assert_pattern_equivalent(Circuit(2).h(0).h(1).cz(0, 1))

    def test_cx(self):
        assert_pattern_equivalent(Circuit(2).h(0).cx(0, 1))

    def test_empty_circuit(self):
        assert_pattern_equivalent(Circuit(2))


class TestCompositeCircuits:
    def test_bell_pair(self):
        assert_pattern_equivalent(Circuit(2).h(0).cx(0, 1))

    def test_ghz(self):
        assert_pattern_equivalent(Circuit(3).h(0).cx(0, 1).cx(1, 2))

    def test_teleport_like(self):
        c = Circuit(3).rz(0.4, 0).h(1).cx(1, 2).cx(0, 1).h(0)
        assert_pattern_equivalent(c)

    def test_adaptive_chain(self):
        """T gates force non-trivial X-dependencies."""
        c = Circuit(1).t(0).h(0).t(0).h(0).t(0)
        assert_pattern_equivalent(c, seeds=range(6))

    def test_deep_entangled_nonclifford(self):
        c = Circuit(2).h(0).t(0).cx(0, 1).t(1).cx(1, 0).rz(0.3, 0).cz(0, 1)
        assert_pattern_equivalent(c, seeds=range(6))

    @pytest.mark.parametrize("seed", range(12))
    def test_random_circuits(self, seed):
        c = random_circuit(3, 10, seed + 500)
        assert_pattern_equivalent(c)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_4q(self, seed):
        c = random_circuit(4, 12, seed + 900)
        assert_pattern_equivalent(c, seeds=(seed,))


class TestBenchmarkPatterns:
    @pytest.mark.parametrize(
        "circuit",
        [qft(4), bernstein_vazirani(4), qaoa_maxcut(4), ripple_carry_adder(6)],
        ids=["qft4", "bv4", "qaoa4", "rca6"],
    )
    def test_equivalence(self, circuit):
        assert_pattern_equivalent(circuit, seeds=(0, 1))


class TestPatternStructure:
    def test_node_count_matches_j_count(self):
        from repro.circuit.library import to_jcz

        c = qft(5)
        pattern = circuit_to_pattern(c)
        jcz = to_jcz(c)
        num_j = jcz.count_ops().get("j", 0)
        assert pattern.graph.number_of_nodes() == num_j + c.num_qubits

    def test_inputs_and_outputs_sizes(self):
        pattern = circuit_to_pattern(qft(4))
        assert len(pattern.inputs) == 4
        assert len(pattern.outputs) == 4

    def test_clifford_circuit_has_no_adaptive_measurements(self):
        c = Circuit(3).h(0).cx(0, 1).s(1).cz(1, 2).h(2)
        pattern = circuit_to_pattern(c)
        assert all(not pattern.is_adaptive(v) for v in pattern.measured_nodes())

    def test_t_gate_creates_adaptive_measurement(self):
        c = Circuit(1).t(0).h(0).t(0)
        pattern = circuit_to_pattern(c)
        assert any(pattern.is_adaptive(v) for v in pattern.measured_nodes())

    def test_bv_graph_is_forest_like(self):
        """BV's graph state is acyclic (paper: why BV maps best)."""
        import networkx as nx

        pattern = circuit_to_pattern(bernstein_vazirani(8))
        assert nx.number_of_nodes(pattern.graph) > 0
        assert nx.is_forest(pattern.graph)

    def test_sequence_covers_measured_nodes(self):
        pattern = circuit_to_pattern(qft(3))
        assert set(pattern.sequence) == set(pattern.measured_nodes())

    def test_forced_outcomes(self):
        c = Circuit(1).t(0).h(0)
        pattern = circuit_to_pattern(c)
        forced = {v: 1 for v in pattern.measured_nodes()}
        sim = PatternSimulator(pattern, force_outcomes=forced)
        result = sim.run()
        assert all(v == 1 for v in result.outcomes.values())
        assert states_equal_up_to_phase(simulate(c), result.state)

    def test_input_state_override(self):
        c = Circuit(1).h(0)
        pattern = circuit_to_pattern(c)
        sim = PatternSimulator(pattern, seed=0)
        result = sim.run(input_state={pattern.inputs[0]: [0.0, 1.0]})
        # H|1> = |->
        import numpy as np

        expected = np.array([1, -1], dtype=complex) / np.sqrt(2)
        assert states_equal_up_to_phase(expected, result.state)
