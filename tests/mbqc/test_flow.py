"""Tests for executability analysis (Lemma 1, layers, scheduling ranks)."""

import pytest

from repro.circuit import Circuit, bernstein_vazirani, qft
from repro.mbqc import (
    adaptive_depth,
    blocking_sources,
    circuit_to_pattern,
    dependency_layers,
    layer_assignment,
    verify_layering,
)
from repro.mbqc.flow import rank_layers, scheduling_ranks
from tests.conftest import random_circuit


class TestDependencyLayers:
    def test_clifford_circuit_single_layer(self):
        """All Clifford measurements execute simultaneously (Sec. 4)."""
        c = Circuit(3).h(0).cx(0, 1).s(1).cz(1, 2).h(2).cx(2, 0)
        pattern = circuit_to_pattern(c)
        assert len(dependency_layers(pattern)) == 1

    def test_bv_single_layer(self):
        pattern = circuit_to_pattern(bernstein_vazirani(8))
        assert len(dependency_layers(pattern)) == 1

    def test_t_chain_multiple_layers(self):
        c = Circuit(1)
        for _ in range(3):
            c.t(0).h(0)
        pattern = circuit_to_pattern(c)
        assert len(dependency_layers(pattern)) >= 2

    def test_layers_cover_all_nodes(self):
        pattern = circuit_to_pattern(qft(4))
        layers = dependency_layers(pattern)
        covered = {v for layer in layers for v in layer}
        assert covered == set(pattern.graph.nodes())

    def test_layers_are_valid(self):
        pattern = circuit_to_pattern(qft(4))
        ok, msg = verify_layering(pattern, dependency_layers(pattern))
        assert ok, msg

    @pytest.mark.parametrize("seed", range(5))
    def test_random_layerings_valid(self, seed):
        pattern = circuit_to_pattern(random_circuit(3, 12, seed + 300))
        ok, msg = verify_layering(pattern, dependency_layers(pattern))
        assert ok, msg

    def test_layer_assignment_consistent(self):
        pattern = circuit_to_pattern(qft(3))
        assignment = layer_assignment(pattern)
        layers = dependency_layers(pattern)
        for idx, layer in enumerate(layers):
            for node in layer:
                assert assignment[node] == idx

    def test_adaptive_depth_qft_scales_with_qubits(self):
        d4 = adaptive_depth(circuit_to_pattern(qft(4)))
        d6 = adaptive_depth(circuit_to_pattern(qft(6)))
        assert d6 > d4


class TestBlockingSources:
    def test_pauli_node_unblocked(self):
        pattern = circuit_to_pattern(Circuit(2).h(0).cx(0, 1).h(1))
        for node in pattern.measured_nodes():
            assert blocking_sources(pattern, node) == frozenset()

    def test_adaptive_node_blocked_by_x_source(self):
        c = Circuit(1).t(0).h(0).t(0)
        pattern = circuit_to_pattern(c)
        adaptive = [v for v in pattern.measured_nodes() if pattern.is_adaptive(v)]
        assert adaptive
        for node in adaptive:
            assert blocking_sources(pattern, node)


class TestSchedulingRanks:
    def test_ranks_respect_raw_dependencies(self):
        pattern = circuit_to_pattern(qft(4))
        ranks = scheduling_ranks(pattern)
        for node, sources in pattern.x_deps.items():
            for src in sources:
                assert ranks[src] < ranks[node]
        for node, sources in pattern.z_deps.items():
            for src in sources:
                assert ranks[src] < ranks[node]

    def test_wire_chain_monotone(self):
        """Consecutive wire nodes get consecutive-ish ranks (geometry)."""
        c = Circuit(1).h(0).h(0).h(0).h(0)
        pattern = circuit_to_pattern(c, )
        # translation without simplification keeps the chain
        from repro.mbqc.translate import circuit_to_pattern as translate

        pattern = translate(c, simplify=False)
        ranks = scheduling_ranks(pattern)
        chain = sorted(pattern.graph.nodes())
        values = [ranks[v] for v in chain]
        assert values == sorted(values)

    def test_rank_layers_cover_all(self):
        pattern = circuit_to_pattern(qft(4))
        layers = rank_layers(pattern)
        covered = {v for layer in layers for v in layer}
        assert covered == set(pattern.graph.nodes())

    def test_rank_layers_geometry_cohesion(self):
        """Most edges connect nearby ranks (unlike Lemma-1 layers)."""
        pattern = circuit_to_pattern(qft(6))
        ranks = scheduling_ranks(pattern)
        spans = [abs(ranks[u] - ranks[v]) for u, v in pattern.graph.edges()]
        assert sum(1 for s in spans if s <= 2) / len(spans) > 0.8

    def test_outputs_ranked_after_producers(self):
        pattern = circuit_to_pattern(qft(3))
        ranks = scheduling_ranks(pattern)
        for out in pattern.outputs:
            for src in pattern.output_x.get(out, frozenset()):
                assert ranks[src] < ranks[out]


def reference_dependency_layers(pattern):
    """The seed ``dependency_layers``: rescans every remaining node per
    round (kept verbatim as the equivalence oracle for the Kahn rewrite)."""
    layer_of = {}
    blocking = {v: blocking_sources(pattern, v) for v in pattern.graph.nodes()}
    remaining = set(pattern.graph.nodes())
    layers = []
    while remaining:
        current = [
            v
            for v in remaining
            if all(src in layer_of for src in blocking[v])
        ]
        if not current:
            raise RuntimeError(
                "dependency cycle detected; pattern dependencies are corrupt"
            )
        for v in current:
            layer_of[v] = len(layers)
        layers.append(sorted(current))
        remaining -= set(current)
    return layers


class TestDependencyLayerEquivalence:
    """The indegree/ready-queue formulation must reproduce the seed's
    layering exactly — same nodes, same layers, same order."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_patterns_identical(self, seed):
        pattern = circuit_to_pattern(random_circuit(4, 18, seed + 900))
        assert dependency_layers(pattern) == reference_dependency_layers(pattern)

    @pytest.mark.parametrize("builder", [lambda: qft(5), lambda: bernstein_vazirani(10)])
    def test_benchmarks_identical(self, builder):
        pattern = circuit_to_pattern(builder())
        assert dependency_layers(pattern) == reference_dependency_layers(pattern)

    def test_deep_t_chain_identical(self):
        c = Circuit(2)
        for i in range(10):
            c.t(i % 2).h(i % 2).cx(0, 1)
        pattern = circuit_to_pattern(c)
        assert dependency_layers(pattern) == reference_dependency_layers(pattern)
