"""CompileClient retry/backoff against a programmable flaky stub server.

The stub accepts real TCP connections and consumes one scripted
behavior per connection: drop it before or after reading a frame, or
serve responses normally.  Tests assert the retry count, the backoff
schedule (via an injected sleep recorder), and that the non-idempotent
``shutdown`` op is never retried.
"""

import socket
import threading

import pytest

from repro.serve.client import CompileClient, ServerClosedError
from repro.serve.protocol import recv_frame, send_frame


class FlakyStub:
    """One scripted behavior per accepted connection.

    Behaviors: ``"drop"`` closes immediately on accept,
    ``"drop-after-read"`` reads one frame then closes (the client sees
    a clean close mid-request), ``"ok"`` answers every frame on the
    connection with ``{"ok": True, "echo": <payload>}``.
    """

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.connections = 0
        self.frames = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with conn:
                self.connections += 1
                behavior = (
                    self.behaviors.pop(0) if self.behaviors else "ok"
                )
                if behavior == "drop":
                    continue
                frame = recv_frame(conn)
                if frame is not None:
                    self.frames.append(frame)
                if behavior == "drop-after-read" or frame is None:
                    continue
                send_frame(conn, {"ok": True, "echo": frame})
                while True:
                    frame = recv_frame(conn)
                    if frame is None:
                        break
                    self.frames.append(frame)
                    send_frame(conn, {"ok": True, "echo": frame})

    def close(self):
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


@pytest.fixture()
def make_stub():
    stubs = []

    def factory(behaviors):
        stub = FlakyStub(behaviors)
        stubs.append(stub)
        return stub

    yield factory
    for stub in stubs:
        stub.close()


def make_client(stub, **kwargs):
    sleeps = []
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("sleep", sleeps.append)
    client = CompileClient(stub.host, stub.port, **kwargs)
    return client, sleeps


class TestRetries:
    def test_clean_server_needs_no_retries(self, make_stub):
        stub = make_stub(["ok"])
        client, sleeps = make_client(stub)
        with client:
            assert client.ping() is True
        assert sleeps == []
        assert stub.connections == 1

    def test_retries_through_dropped_connections(self, make_stub):
        stub = make_stub(["drop-after-read", "drop-after-read", "ok"])
        client, sleeps = make_client(stub, retries=2, backoff=0.05)
        with client:
            assert client.ping() is True
        # two failures -> two backoff sleeps, exponentially doubled
        assert sleeps == [0.05, 0.1]
        assert stub.connections == 3

    def test_exhausted_retries_reraise_the_last_failure(self, make_stub):
        stub = make_stub(["drop-after-read"] * 3)
        client, sleeps = make_client(stub, retries=2)
        with client:
            with pytest.raises(ServerClosedError):
                client.ping()
        assert len(sleeps) == 2
        assert stub.connections == 3

    def test_retries_zero_means_single_attempt(self, make_stub):
        stub = make_stub(["drop-after-read", "ok"])
        client, sleeps = make_client(stub, retries=0)
        with client:
            with pytest.raises(ServerClosedError):
                client.ping()
        assert sleeps == []
        assert stub.connections == 1

    def test_backoff_schedule_is_capped(self, make_stub):
        stub = make_stub(["drop-after-read"] * 3 + ["ok"])
        client, sleeps = make_client(
            stub, retries=3, backoff=0.2, backoff_cap=0.5
        )
        with client:
            assert client.ping() is True
        assert sleeps == [0.2, 0.4, 0.5]

    def test_reconnects_after_drop_on_accept(self, make_stub):
        # the first retry hits a connection the stub kills on accept:
        # the client must reconnect again rather than give up
        stub = make_stub(["drop-after-read", "drop", "ok"])
        client, sleeps = make_client(stub, retries=2)
        with client:
            assert client.ping() is True
        assert stub.connections == 3


class TestShutdownIsNotRetried:
    def test_shutdown_single_attempt(self, make_stub):
        stub = make_stub(["drop-after-read", "ok"])
        client, sleeps = make_client(stub, retries=3)
        with client:
            with pytest.raises(ServerClosedError):
                client.shutdown()
        assert sleeps == []
        assert stub.connections == 1
        # the scripted "ok" connection was never consumed
        assert stub.behaviors == ["ok"]

    def test_shutdown_success_path(self, make_stub):
        stub = make_stub(["ok"])
        client, _ = make_client(stub, retries=3)
        with client:
            response = client.shutdown()
        assert response["ok"] is True
        assert stub.frames == [{"op": "shutdown"}]


class TestKnobValidation:
    def test_negative_retries_rejected(self, make_stub):
        stub = make_stub(["ok"])
        with pytest.raises(ValueError, match="retries"):
            CompileClient(stub.host, stub.port, retries=-1)

    def test_negative_backoff_rejected(self, make_stub):
        stub = make_stub(["ok"])
        with pytest.raises(ValueError, match="backoff"):
            CompileClient(stub.host, stub.port, backoff=-0.1)
