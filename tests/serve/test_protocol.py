"""Tests for the length-prefixed JSON wire protocol."""

import socket
import threading

import pytest

from repro.serve.protocol import (
    HEADER,
    MAX_PAYLOAD_BYTES,
    FrameError,
    decode_payload,
    encode_frame,
    error_response,
    recv_frame,
    send_frame,
)


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_roundtrip(self):
        a, b = _pair()
        try:
            send_frame(a, {"op": "ping", "n": 3})
            assert recv_frame(b) == {"op": "ping", "n": 3}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_sequence(self):
        a, b = _pair()
        try:
            for index in range(5):
                send_frame(a, {"i": index})
            for index in range(5):
                assert recv_frame(b) == {"i": index}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_header_raises(self):
        a, b = _pair()
        try:
            a.sendall(b"\x00\x00")  # half a header
            a.close()
            with pytest.raises(FrameError) as excinfo:
                recv_frame(b)
            assert excinfo.value.code == "bad-frame"
        finally:
            b.close()

    def test_truncated_payload_raises(self):
        a, b = _pair()
        try:
            frame = encode_frame({"op": "compile", "benchmark": "QFT"})
            a.sendall(frame[:-5])
            a.close()
            with pytest.raises(FrameError) as excinfo:
                recv_frame(b)
            assert excinfo.value.code == "bad-frame"
        finally:
            b.close()

    def test_oversized_frame_rejected_before_payload(self):
        """The cap applies to the *declared* length: the receiver must
        refuse without waiting for (or buffering) the body."""
        a, b = _pair()
        try:
            a.sendall(HEADER.pack(MAX_PAYLOAD_BYTES + 1))
            # no payload is ever sent: recv_frame must still return
            with pytest.raises(FrameError) as excinfo:
                recv_frame(b)
            assert excinfo.value.code == "too-large"
        finally:
            a.close()
            b.close()

    def test_custom_cap(self):
        a, b = _pair()
        try:
            send_frame(a, {"blob": "x" * 1000})
            with pytest.raises(FrameError) as excinfo:
                recv_frame(b, max_bytes=100)
            assert excinfo.value.code == "too-large"
        finally:
            a.close()
            b.close()

    def test_large_frame_crosses_recv_chunks(self):
        """Payloads larger than one recv() arrive intact."""
        a, b = _pair()
        payload = {"blob": "y" * 300_000}
        received = {}

        def reader():
            received["frame"] = recv_frame(b)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            send_frame(a, payload)
            thread.join(10)
            assert received["frame"] == payload
        finally:
            a.close()
            b.close()


class TestPayloadDecoding:
    def test_bad_json_raises(self):
        with pytest.raises(FrameError) as excinfo:
            decode_payload(b"{not json")
        assert excinfo.value.code == "bad-json"

    def test_non_object_payload_rejected(self):
        with pytest.raises(FrameError) as excinfo:
            decode_payload(b"[1, 2, 3]")
        assert excinfo.value.code == "bad-json"

    def test_bad_utf8_rejected(self):
        with pytest.raises(FrameError) as excinfo:
            decode_payload(b"\xff\xfe\x00")
        assert excinfo.value.code == "bad-json"


class TestErrorResponse:
    def test_shape(self):
        response = error_response("bad-request", "nope", key="abc")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"
        assert response["error"]["message"] == "nope"
        assert response["key"] == "abc"

    def test_unknown_code_asserts(self):
        with pytest.raises(AssertionError):
            error_response("made-up-code", "boom")
