"""Tests for the two-tier artifact store.

Covers the ISSUE-8 store contract: LRU capacity bounds and eviction
order (property-tested against a dict+deque model), hit/miss/eviction
accounting, atomic writes (no torn files under thread + process
concurrency), and corruption-tolerant reads.
"""

import hashlib
import json
import multiprocessing
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.store import ArtifactStore, DiskTier, MemoryLRU


class TestMemoryLRU:
    def test_basic_roundtrip(self):
        lru = MemoryLRU(capacity=2)
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.get("missing") is None

    def test_capacity_bound_and_eviction_order(self):
        lru = MemoryLRU(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)  # evicts a (least recently used)
        assert lru.get("a") is None
        assert lru.get("b") == 2
        assert lru.get("c") == 3
        assert lru.evictions == 1

    def test_get_refreshes_recency(self):
        lru = MemoryLRU(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")      # a becomes most recent
        lru.put("c", 3)   # evicts b
        assert lru.get("a") == 1
        assert lru.get("b") is None

    def test_put_overwrites_and_refreshes(self):
        lru = MemoryLRU(capacity=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)  # refresh a
        lru.put("c", 3)   # evicts b
        assert lru.get("a") == 10
        assert lru.get("b") is None

    def test_zero_capacity_disables_tier(self):
        lru = MemoryLRU(capacity=0)
        lru.put("a", 1)
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryLRU(capacity=-1)

    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=5),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get"]),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=60,
        ),
    )
    def test_matches_model(self, capacity, ops):
        """LRU behaviour equals a dict + recency-list reference model
        over arbitrary get/put interleavings."""
        lru = MemoryLRU(capacity=capacity)
        model = {}
        recency = []  # least recent first

        def touch(key):
            if key in recency:
                recency.remove(key)
            recency.append(key)

        for op, raw in ops:
            key = f"k{raw}"
            if op == "put":
                lru.put(key, raw)
                model[key] = raw
                touch(key)
                while len(model) > capacity:
                    evicted = recency.pop(0)
                    del model[evicted]
            else:
                got = lru.get(key)
                assert got == model.get(key)
                if key in model:
                    touch(key)
            assert len(lru) == len(model)
            assert len(lru) <= capacity
        # full state + recency order must match the model exactly
        assert list(lru.keys()) == recency


def _artifact(tag: str) -> dict:
    """A payload carrying its own checksum, so torn reads are provable."""
    body = {"tag": tag, "data": tag * 50}
    body["checksum"] = hashlib.sha1(
        json.dumps(body, sort_keys=True).encode()
    ).hexdigest()
    return body


def _verify_artifact(artifact: dict) -> None:
    body = {k: v for k, v in artifact.items() if k != "checksum"}
    expected = hashlib.sha1(
        json.dumps(body, sort_keys=True).encode()
    ).hexdigest()
    assert artifact["checksum"] == expected, "torn or corrupt artifact"


class TestArtifactStore:
    def test_miss_then_memory_hit(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        assert store.get("k") is None
        store.put("k", _artifact("k"))
        hit = store.get("k")
        assert hit.tier == "memory"
        _verify_artifact(hit.artifact)
        assert store.stats.misses == 1
        assert store.stats.memory_hits == 1
        assert store.stats.puts == 1

    def test_disk_hit_after_memory_clear(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        store.put("k", _artifact("k"))
        store.clear_memory()
        hit = store.get("k")
        assert hit.tier == "disk"
        _verify_artifact(hit.artifact)
        # the disk hit repopulates the memory tier
        assert store.get("k").tier == "memory"
        assert store.stats.disk_hits == 1
        assert store.stats.memory_hits == 1

    def test_fresh_store_instance_reads_disk(self, tmp_path):
        first = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        first.put("k", _artifact("k"))
        second = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        hit = second.get("k")
        assert hit.tier == "disk"
        assert hit.artifact == first.get("k").artifact

    def test_memory_only_mode(self):
        store = ArtifactStore(cache_dir=None, schema_version=1)
        store.put("k", _artifact("k"))
        assert store.get("k").tier == "memory"
        assert store.disk_path("k") is None

    def test_disk_only_mode(self, tmp_path):
        store = ArtifactStore(
            cache_dir=tmp_path, memory_capacity=0, schema_version=1
        )
        store.put("k", _artifact("k"))
        assert store.get("k").tier == "disk"

    def test_corrupt_file_is_a_miss_and_counted(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        store.put("k", _artifact("k"))
        store.clear_memory()
        path = store.disk_path("k")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get("k") is None
        assert store.stats.corrupt_reads == 1
        # a re-put repairs the entry
        store.put("k", _artifact("k"))
        store.clear_memory()
        assert store.get("k").tier == "disk"

    def test_garbage_file_is_a_miss(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        store.disk_path("k").parent.mkdir(parents=True, exist_ok=True)
        store.disk_path("k").write_text("\x00\xff not json")
        assert store.get("k") is None
        assert store.stats.corrupt_reads == 1

    def test_schema_mismatch_is_a_silent_miss(self, tmp_path):
        old = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        old.put("k", _artifact("k"))
        new = ArtifactStore(cache_dir=tmp_path, schema_version=2)
        assert new.get("k") is None
        assert new.stats.corrupt_reads == 0  # stale, not corrupt
        assert new.stats.misses == 1

    def test_eviction_counter_tracks_lru(self, tmp_path):
        store = ArtifactStore(
            cache_dir=tmp_path, memory_capacity=2, schema_version=1
        )
        for tag in ("a", "b", "c"):
            store.put(tag, _artifact(tag))
        assert store.stats.evictions == 1
        # evicted key still hits via disk
        assert store.get("a").tier == "disk"

    def test_hit_rate_accounting(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        assert store.stats.hit_rate is None
        store.get("missing")
        store.put("k", _artifact("k"))
        store.get("k")
        assert store.stats.lookups == 2
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        for tag in "abcdef":
            store.put(tag, _artifact(tag))
        leftovers = list(tmp_path.glob("*.tmp")) + list(
            tmp_path.glob(".*.tmp")
        )
        assert leftovers == []

    def test_age_seconds_nonnegative(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path, schema_version=1)
        store.put("k", _artifact("k"))
        assert store.get("k").age_seconds >= 0.0
        store.clear_memory()
        assert store.get("k").age_seconds >= 0.0


class TestDiskTierAtomicity:
    def test_store_replaces_atomically(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.store("k", {"artifact": {"v": 1}})
        tier.store("k", {"artifact": {"v": 2}})
        assert tier.load("k") == {"artifact": {"v": 2}}
        assert list(tmp_path.iterdir()) == [tier.path("k")]

    def test_load_checked_distinguishes_absent_from_corrupt(self, tmp_path):
        tier = DiskTier(tmp_path)
        assert tier.load_checked("nope") == (None, False)
        tier.path("bad").parent.mkdir(parents=True, exist_ok=True)
        tier.path("bad").write_text("{truncated")
        assert tier.load_checked("bad") == (None, True)


# -- concurrency stress -------------------------------------------------
_KEYS = [f"key{i}" for i in range(4)]


def _hammer_process(args):
    """Worker-process body: write and read shared keys, verify payloads."""
    directory, worker_id, rounds = args
    store = ArtifactStore(
        cache_dir=directory, memory_capacity=2, schema_version=1
    )
    bad = 0
    for round_index in range(rounds):
        for key in _KEYS:
            store.put(key, _artifact(f"{key}-w{worker_id}-r{round_index}"))
            hit = store.get(key)
            if hit is not None:
                try:
                    _verify_artifact(hit.artifact)
                except AssertionError:
                    bad += 1
    return bad


class TestConcurrentAccess:
    def test_threads_hammering_one_store(self, tmp_path):
        """Every concurrent read returns a complete artifact."""
        store = ArtifactStore(
            cache_dir=tmp_path, memory_capacity=2, schema_version=1
        )
        errors = []

        def worker(worker_id):
            try:
                for round_index in range(30):
                    for key in _KEYS:
                        store.put(
                            key,
                            _artifact(f"{key}-t{worker_id}-{round_index}"),
                        )
                        hit = store.get(key)
                        if hit is not None:
                            _verify_artifact(hit.artifact)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(list(tmp_path.glob("*.tmp"))) == 0

    def test_processes_hammering_one_cache_dir(self, tmp_path):
        """Separate processes share the disk tier without torn reads."""
        with multiprocessing.Pool(3) as pool:
            torn_counts = pool.map(
                _hammer_process, [(str(tmp_path), i, 15) for i in range(3)]
            )
        assert torn_counts == [0, 0, 0]
        # the final state of every key parses and verifies
        store = ArtifactStore(
            cache_dir=tmp_path, memory_capacity=0, schema_version=1
        )
        for key in _KEYS:
            hit = store.get(key)
            assert hit is not None
            _verify_artifact(hit.artifact)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestSanitizerHammer:
    """Seeded multi-thread hammer with the lock-order sanitizer active.

    Same contention pattern as TestConcurrentAccess, but every lock in
    the store is a TrackedLock: the test then asserts the dynamic
    lock-order witness is acyclic, consistent with the statically
    inferred acquisition graph, and that the instrumentation actually
    recorded acquisitions for both store locks (a silently disabled
    sanitizer must not pass).
    """

    def test_store_hammer_records_acyclic_witness(
        self, tmp_path, lock_sanitizer
    ):
        import random

        from repro.analysis.concurrency import ConcurrencyAnalyzer
        from repro.utils import sync

        registry = lock_sanitizer
        store = ArtifactStore(
            cache_dir=tmp_path, memory_capacity=2, schema_version=1
        )
        assert isinstance(store._lock, sync.TrackedLock)
        errors = []

        def worker(worker_id):
            rng = random.Random(1000 + worker_id)
            try:
                for round_index in range(20):
                    keys = list(_KEYS)
                    rng.shuffle(keys)
                    for key in keys:
                        if rng.random() < 0.6:
                            store.put(
                                key,
                                _artifact(
                                    f"{key}-s{worker_id}-{round_index}"
                                ),
                            )
                        hit = store.get(key)
                        if hit is not None:
                            _verify_artifact(hit.artifact)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        import pathlib

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        analyzer = ConcurrencyAnalyzer()
        analyzer.add_paths([src / "serve", src / "utils"])
        witness = sync.check_witness_against(
            analyzer.lock_order_edges(),
            registry,
            require_locks=["MemoryLRU._lock", "ArtifactStore._lock"],
        )
        # the store never holds both locks at once: no witnessed edges
        # between them in either direction
        assert ("MemoryLRU._lock", "ArtifactStore._lock") not in witness
        assert ("ArtifactStore._lock", "MemoryLRU._lock") not in witness
