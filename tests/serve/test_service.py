"""Tests for the in-process CompileService and request normalization."""

import threading

import pytest

from repro.serve.service import (
    CompileService,
    RequestError,
    job_key,
    normalize_request,
)


class TestNormalizeRequest:
    def test_benchmark_defaults_applied(self):
        job = normalize_request({"op": "compile", "benchmark": "QFT"})
        assert job["benchmark"] == "QFT"
        assert job["qubits"] == 16
        assert job["seed"] == 7
        assert job["resource_state"] == "3-line"
        assert job["shots"] == 0
        assert job["mc_engine"] == "frame"
        assert job["verify"] is False

    def test_equivalent_requests_share_a_key(self):
        explicit = normalize_request(
            {"op": "compile", "benchmark": "QFT", "qubits": 16, "seed": 7}
        )
        defaulted = normalize_request({"op": "compile", "benchmark": "QFT"})
        assert job_key(explicit) == job_key(defaulted)

    def test_key_sensitive_to_every_axis(self):
        base = normalize_request({"op": "compile", "benchmark": "QFT"})
        for override in (
            {"qubits": 17},
            {"seed": 8},
            {"resource_state": "4-star"},
            {"shots": 100},
            {"noise": {"cycle_loss": 0.01}},
            {"verify": True},
            {"mc_engine": "batched"},
        ):
            other = normalize_request(
                {"op": "compile", "benchmark": "QFT", **override}
            )
            assert job_key(other) != job_key(base), override

    def test_qasm_form(self):
        job = normalize_request(
            {"op": "compile", "qasm": "OPENQASM 2.0;", "name": "mine"}
        )
        assert job["qasm"] == "OPENQASM 2.0;"
        assert job["name"] == "mine"
        assert "benchmark" not in job

    @pytest.mark.parametrize(
        "request_payload",
        [
            {},  # neither qasm nor benchmark
            {"benchmark": "QFT", "qasm": "x"},  # both
            {"benchmark": "NOPE"},
            {"benchmark": "QFT", "qubits": 0},
            {"benchmark": "QFT", "qubits": 300},
            {"benchmark": "QFT", "qubits": "16"},
            {"benchmark": "QFT", "qubits": True},
            {"benchmark": "QFT", "seed": 1.5},
            {"benchmark": "QFT", "resource_state": "5-blob"},
            {"benchmark": "QFT", "shots": -1},
            {"benchmark": "QFT", "noise": [1, 2]},
            {"benchmark": "QFT", "noise": {"cycle_loss": "high"}},
            {"benchmark": "QFT", "verify": "yes"},
            {"benchmark": "QFT", "mc_engine": "warp"},
            {"benchmark": "QFT", "typo_field": 1},
            {"qasm": ""},
            {"qasm": "   "},
        ],
    )
    def test_invalid_requests_rejected(self, request_payload):
        with pytest.raises(RequestError):
            normalize_request({"op": "compile", **request_payload})

    def test_noise_is_canonicalized(self):
        a = normalize_request(
            {"op": "compile", "benchmark": "BV",
             "noise": {"cycle_loss": 0.01, "fusion_success": 0.5}}
        )
        b = normalize_request(
            {"op": "compile", "benchmark": "BV",
             "noise": {"fusion_success": 0.5, "cycle_loss": 0.01}}
        )
        assert job_key(a) == job_key(b)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    with CompileService(
        workers=2, cache_dir=tmp_path_factory.mktemp("serve-cache")
    ) as svc:
        yield svc


class TestCompileService:
    def test_miss_then_memory_hit_bit_identical(self, service):
        request = {"op": "compile", "benchmark": "BV", "qubits": 8}
        first = service.handle(request)
        assert first["ok"], first
        assert first["cache_tier"] is None
        second = service.handle(request)
        assert second["ok"]
        assert second["cache_tier"] == "memory"
        assert second["cache_age_seconds"] >= 0.0
        assert second["artifact"] == first["artifact"]
        assert first["artifact"]["depth"] >= 1
        assert first["artifact"]["kind"] == "benchmark"

    def test_disk_tier_survives_memory_clear(self, service):
        request = {"op": "compile", "benchmark": "BV", "qubits": 6}
        first = service.handle(request)
        service.store.clear_memory()
        second = service.handle(request)
        assert second["cache_tier"] == "disk"
        assert second["artifact"] == first["artifact"]

    def test_qasm_request_compiles_and_caches(self, service):
        from repro.circuit import get_benchmark
        from repro.circuit.qasm import to_qasm

        qasm = to_qasm(get_benchmark("BV", 6, seed=7))
        request = {"op": "compile", "qasm": qasm, "name": "bv6"}
        first = service.handle(request)
        assert first["ok"], first
        assert first["artifact"]["kind"] == "qasm"
        assert first["artifact"]["num_qubits"] == 6
        assert first["artifact"]["depth"] >= 1
        second = service.handle(request)
        assert second["cache_tier"] == "memory"
        assert second["artifact"] == first["artifact"]

    def test_yield_estimate_in_artifact(self, service):
        response = service.handle(
            {"op": "compile", "benchmark": "BV", "qubits": 6, "shots": 200}
        )
        assert response["ok"]
        artifact = response["artifact"]
        assert artifact["shots"] == 200
        assert 0.0 <= artifact["yield_mc"] <= 1.0
        assert 0.0 < artifact["yield_analytic"] < 1.0

    def test_ping_and_stats_ops(self, service):
        assert service.handle({"op": "ping"})["ok"] is True
        response = service.handle({"op": "stats"})
        assert response["ok"] is True
        stats = response["stats"]
        assert stats["workers"] == 2
        assert stats["jobs_completed"] >= 1
        assert stats["store"]["puts"] >= 1
        assert 0.0 <= stats["store"]["hit_rate"] <= 1.0

    def test_unknown_op_rejected(self, service):
        response = service.handle({"op": "teleport"})
        assert response["ok"] is False
        assert response["error"]["code"] == "unknown-op"

    def test_bad_request_rejected(self, service):
        response = service.handle({"op": "compile", "benchmark": "NOPE"})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"
        assert "benchmark" in response["error"]["message"]

    def test_worker_exception_reported_not_raised(self, service):
        response = service.handle(
            {"op": "compile", "qasm": "this is not qasm", "name": "bad"}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "compile-error"

    def test_single_flight_joins_inflight_compile(self, tmp_path):
        """Concurrent identical requests trigger exactly one compile."""
        with CompileService(workers=2, cache_dir=tmp_path) as svc:
            request = {"op": "compile", "benchmark": "QFT", "qubits": 12}
            responses = [None] * 4

            def issue(slot):
                responses[slot] = svc.handle(request)

            threads = [
                threading.Thread(target=issue, args=(slot,))
                for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(r["ok"] for r in responses)
            artifacts = [r["artifact"] for r in responses]
            assert all(a == artifacts[0] for a in artifacts)
            # exactly one request actually compiled; the rest joined the
            # in-flight future or hit the store it populated
            fresh = [r for r in responses if r["cache_tier"] is None]
            assert len(fresh) == 1
            assert svc.jobs_completed == 1

    def test_single_flight_under_sanitizer(self, tmp_path, lock_sanitizer):
        """Single-flight + torn-stat guarantees hold under TrackedLock.

        Seeded hammer: many threads issue a mix of identical and
        distinct compile requests with the lock-order sanitizer active.
        Afterwards the dynamic witness must be acyclic and consistent
        with the static acquisition graph, both service locks must have
        actually recorded acquisitions, exactly one fresh compile per
        distinct key must have happened, and the jobs_completed counter
        must not be torn.
        """
        import pathlib
        import random

        from repro.analysis.concurrency import ConcurrencyAnalyzer
        from repro.utils import sync

        registry = lock_sanitizer
        with CompileService(workers=2, cache_dir=tmp_path) as svc:
            assert isinstance(svc._lock, sync.TrackedLock)
            requests = [
                {"op": "compile", "benchmark": "BV", "qubits": q}
                for q in (6, 7)
            ]
            responses = []
            responses_lock = threading.Lock()

            def issue(worker_id):
                rng = random.Random(2000 + worker_id)
                for _ in range(3):
                    response = svc.handle(rng.choice(requests))
                    with responses_lock:
                        responses.append(response)

            threads = [
                threading.Thread(target=issue, args=(i,))
                for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert all(r["ok"] for r in responses)
            fresh = [r for r in responses if r["cache_tier"] is None]
            served_keys = {r["key"] for r in responses}
            # exactly one fresh compile per distinct key, and the
            # completion counter agrees (no torn increments)
            assert len(fresh) == len({r["key"] for r in fresh})
            assert svc.stats()["jobs_completed"] == len(fresh)
            assert len(served_keys) <= len(requests)

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        analyzer = ConcurrencyAnalyzer()
        analyzer.add_paths([src / "serve", src / "utils"])
        sync.check_witness_against(
            analyzer.lock_order_edges(),
            registry,
            require_locks=[
                "CompileService._lock",
                "MemoryLRU._lock",
                "ArtifactStore._lock",
            ],
        )

    def test_close_rejects_new_compiles(self, tmp_path):
        svc = CompileService(workers=1, cache_dir=tmp_path)
        warm = {"op": "compile", "benchmark": "BV", "qubits": 6}
        assert svc.handle(warm)["ok"]
        svc.close()
        # cached artifacts still serve after close ...
        assert svc.handle(warm)["cache_tier"] == "memory"
        # ... but new compiles are refused
        response = svc.handle({"op": "compile", "benchmark": "BV", "qubits": 7})
        assert response["ok"] is False
        assert response["error"]["code"] == "shutting-down"
