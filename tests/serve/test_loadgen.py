"""Tests for the closed-loop load generator and serving-table artifacts."""

import csv
import json

import pytest

from repro.serve.loadgen import (
    SERVING_SCHEMA_VERSION,
    SERVING_TABLE_COLUMNS,
    WORKLOADS,
    CellResult,
    Workload,
    percentile,
    render_cells,
    run_cell,
    run_load,
    write_serving_table,
)
from repro.serve.server import ServerThread


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.95) == 7.0

    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.0) == 1
        assert percentile(values, 0.5) == 51  # round(0.5 * 99) = 50
        assert percentile(values, 1.0) == 100

    def test_order_independent(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0
        assert percentile([5.0, 1.0, 3.0], 0.0) == 1.0


class TestWorkloads:
    def test_registry_names(self):
        assert set(WORKLOADS) == {
            "hot-qft16", "mixed-16", "cold-seeds", "qasm-bv12"
        }

    def test_hot_workload_is_constant(self):
        hot = WORKLOADS["hot-qft16"]
        assert hot.distinct == 1
        assert hot.make_request(0) == hot.make_request(99)

    def test_mixed_rotates_benchmarks(self):
        mixed = WORKLOADS["mixed-16"]
        names = {mixed.make_request(i)["benchmark"] for i in range(8)}
        assert names == {"QFT", "QAOA", "RCA", "BV"}
        assert mixed.distinct == 4

    def test_cold_seeds_are_distinct(self):
        cold = WORKLOADS["cold-seeds"]
        assert cold.distinct == 0  # nothing is warmable
        assert cold.make_request(0) != cold.make_request(1)

    def test_cold_seeds_stay_cold_across_cells(self):
        cold = WORKLOADS["cold-seeds"]
        before = cold.make_request(0)["seed"]
        cold.make_request.begin_cell()  # what run_cell does per cell
        after = cold.make_request(0)["seed"]
        assert after != before  # a new cell never replays old seeds

    def test_qasm_workload_round_trips(self):
        request = WORKLOADS["qasm-bv12"].make_request(0)
        assert request["op"] == "compile"
        assert request["qasm"].startswith("OPENQASM")
        # lazy text is rendered once and reused
        assert request["qasm"] is WORKLOADS["qasm-bv12"].make_request(1)["qasm"]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = ServerThread(
        workers=2, cache_dir=tmp_path_factory.mktemp("loadgen-cache")
    ).start()
    yield handle
    handle.stop()


class TestRunCell:
    def test_hot_cell_all_hits_after_warmup(self, server):
        cell = run_cell(
            server.host, server.port, WORKLOADS["hot-qft16"],
            concurrency=2, requests=8,
        )
        assert cell.requests == 8
        assert cell.warmup_requests == 1
        assert cell.failure_rate == 0.0
        assert cell.cache_hit_rate == 1.0  # warmed: every request hits
        assert cell.errors == []
        assert cell.throughput_rps > 0
        assert cell.avg_latency_ms > 0
        assert cell.p50_latency_ms <= cell.p95_latency_ms <= cell.max_latency_ms

    def test_single_worker_cell(self, server):
        cell = run_cell(
            server.host, server.port, WORKLOADS["qasm-bv12"],
            concurrency=1, requests=3,
        )
        assert cell.requests == 3
        assert cell.failure_rate == 0.0

    def test_failure_accounting_with_bad_requests(self, server):
        """Error responses count as failures but keep latency samples."""
        bad = Workload(
            "bad", lambda i: {"op": "compile", "benchmark": "NOPE"},
            distinct=0, description="always invalid",
        )
        cell = run_cell(server.host, server.port, bad,
                        concurrency=2, requests=6)
        assert cell.requests == 6  # every request got a (error) response
        assert cell.failure_rate == 1.0
        assert cell.cache_hit_rate == 0.0
        assert len(cell.errors) == 6
        assert all("bad-request" in e for e in cell.errors)

    def test_connection_refused_counts_as_transport_failure(self):
        cell = run_cell(
            "127.0.0.1", 1,  # nothing listens on port 1
            WORKLOADS["cold-seeds"], concurrency=2, requests=4,
        )
        assert cell.requests == 0
        assert cell.failure_rate == 1.0
        assert len(cell.errors) == 2  # one connect error per worker
        assert all("connect" in e for e in cell.errors)

    def test_concurrency_must_be_positive(self, server):
        with pytest.raises(ValueError):
            run_cell(server.host, server.port, WORKLOADS["hot-qft16"],
                     concurrency=0, requests=1)


class TestRunLoad:
    def test_grid_shape_and_order(self, server):
        cells = run_load(
            server.host, server.port,
            workloads=["hot-qft16", "qasm-bv12"],
            concurrencies=[1, 2], requests=4,
        )
        assert [(c.workload, c.concurrency) for c in cells] == [
            ("hot-qft16", 1), ("hot-qft16", 2),
            ("qasm-bv12", 1), ("qasm-bv12", 2),
        ]
        assert all(c.failure_rate == 0.0 for c in cells)

    def test_unknown_workload_rejected(self, server):
        with pytest.raises(ValueError) as excinfo:
            run_load(server.host, server.port,
                     workloads=["nope"], concurrencies=[1], requests=1)
        assert "unknown workload" in str(excinfo.value)


def _cell(workload="hot-qft16", concurrency=1):
    return CellResult(
        workload=workload, concurrency=concurrency, requests=10,
        warmup_requests=1, seconds=0.5, throughput_rps=20.0,
        avg_latency_ms=1.25, p50_latency_ms=1.0, p95_latency_ms=3.0,
        max_latency_ms=4.0, failure_rate=0.0, cache_hit_rate=1.0,
    )


class TestServingTableArtifacts:
    def test_json_and_csv_carry_all_columns(self, tmp_path):
        cells = [_cell(), _cell(concurrency=4)]
        json_path, csv_path = write_serving_table(
            cells, tmp_path, meta={"requests": 10}
        )
        payload = json.loads(json_path.read_text())
        assert payload["schema_version"] == SERVING_SCHEMA_VERSION
        assert payload["columns"] == SERVING_TABLE_COLUMNS
        assert payload["meta"] == {"requests": 10}
        assert len(payload["cells"]) == 2
        for row in payload["cells"]:
            assert list(row) == SERVING_TABLE_COLUMNS

        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert list(rows[0]) == SERVING_TABLE_COLUMNS
        assert rows[0]["workload"] == "hot-qft16"
        assert float(rows[1]["concurrency"]) == 4

    def test_row_excludes_error_detail(self):
        cell = _cell()
        cell.errors.append("request 3: boom")
        assert "errors" not in cell.row()
        assert set(cell.row()) == set(SERVING_TABLE_COLUMNS)

    def test_render_cells_lists_every_cell(self):
        text = render_cells([_cell(), _cell(workload="mixed-16")])
        assert "hot-qft16" in text
        assert "mixed-16" in text
        assert len(text.splitlines()) == 4  # header + rule + 2 cells
