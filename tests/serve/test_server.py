"""End-to-end socket tests for the compile server.

The ISSUE-8 service checklist: ephemeral-port server, QFT-16 submitted
twice (second response a bit-identical cache hit), malformed-request
and oversized-payload rejection, graceful shutdown (in-flight jobs
complete, queue drains).
"""

import socket
import threading
import time

import pytest

from repro.serve.client import CompileClient, ServerClosedError
from repro.serve.protocol import HEADER, recv_frame, send_frame
from repro.serve.server import ServerThread


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = ServerThread(
        workers=2, cache_dir=tmp_path_factory.mktemp("server-cache")
    ).start()
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with CompileClient(server.host, server.port) as c:
        yield c


class TestEndToEnd:
    def test_ping(self, client):
        assert client.ping() is True

    def test_qft16_twice_second_is_bit_identical_cache_hit(self, client):
        first = client.compile(benchmark="QFT", qubits=16)
        assert first["ok"], first
        assert first["artifact"]["depth"] >= 1
        assert first["artifact"]["num_fusions"] >= 1
        second = client.compile(benchmark="QFT", qubits=16)
        assert second["ok"]
        assert second["cache_tier"] in ("memory", "disk")
        assert second["artifact"] == first["artifact"]
        assert second["key"] == first["key"]
        # the cached response is an order of magnitude faster
        assert second["seconds"] < first["seconds"]

    def test_two_connections_share_the_store(self, server):
        with CompileClient(server.host, server.port) as a:
            first = a.compile(benchmark="BV", qubits=10)
        with CompileClient(server.host, server.port) as b:
            second = b.compile(benchmark="BV", qubits=10)
        assert second["cache_tier"] in ("memory", "disk")
        assert second["artifact"] == first["artifact"]

    def test_stats_over_the_wire(self, client):
        client.compile(benchmark="BV", qubits=8)
        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["store"]["lookups"] >= 1

    def test_invalid_request_keeps_connection_usable(self, client):
        response = client.compile(benchmark="WARP")
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"
        # framing stayed healthy: the same connection still serves
        assert client.ping() is True

    def test_malformed_json_rejected_then_closed(self, server):
        sock = socket.create_connection(
            (server.host, server.port), timeout=10
        )
        try:
            body = b"{broken json"
            sock.sendall(HEADER.pack(len(body)) + body)
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad-json"
            # the server hangs up after a framing-level violation
            assert recv_frame(sock) is None
        finally:
            sock.close()

    def test_oversized_payload_rejected(self, tmp_path):
        handle = ServerThread(
            workers=1, cache_dir=tmp_path, max_payload=1024
        ).start()
        try:
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=10
            )
            try:
                send_frame(sock, {"op": "compile", "qasm": "x" * 10_000})
                response = recv_frame(sock)
                assert response["ok"] is False
                assert response["error"]["code"] == "too-large"
            finally:
                sock.close()
            # an in-cap request on a fresh connection still works
            with CompileClient(handle.host, handle.port) as c:
                assert c.ping() is True
        finally:
            handle.stop()

    def test_oversized_header_never_buffers(self, server):
        """A hostile length prefix is refused without reading a body."""
        sock = socket.create_connection(
            (server.host, server.port), timeout=10
        )
        try:
            sock.sendall(HEADER.pack(2**31))  # 2 GiB declared, no body
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["error"]["code"] == "too-large"
        finally:
            sock.close()

    def test_client_raises_when_server_closes_mid_request(self, tmp_path):
        handle = ServerThread(workers=1, cache_dir=tmp_path).start()
        client = CompileClient(handle.host, handle.port, timeout=5)
        assert client.ping() is True  # the session is live ...
        handle.stop()                 # ... then the server goes away
        with pytest.raises((ServerClosedError, OSError)):
            client.request({"op": "ping"})
        client.close()


class TestGracefulShutdown:
    def test_inflight_jobs_complete_and_port_closes(self, tmp_path):
        handle = ServerThread(workers=2, cache_dir=tmp_path).start()
        responses = {}
        errors = []

        def compile_request(slot, qubits):
            try:
                with CompileClient(handle.host, handle.port) as c:
                    responses[slot] = c.compile(
                        benchmark="QFT", qubits=qubits
                    )
            except Exception as exc:
                errors.append(exc)

        # distinct circuits: every request is a real in-flight compile
        threads = [
            threading.Thread(target=compile_request, args=(slot, 13 + slot))
            for slot in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let the compiles reach the worker pool
        with CompileClient(handle.host, handle.port) as c:
            ack = c.shutdown()
        assert ack["ok"] is True and ack["draining"] is True

        for thread in threads:
            thread.join(60)
        assert errors == []
        # every in-flight job completed and delivered a real artifact
        assert sorted(responses) == [0, 1, 2]
        for slot, response in responses.items():
            assert response["ok"], response
            assert response["artifact"]["depth"] >= 1

        # the listener drains away: new connections are refused
        deadline = time.time() + 10
        refused = False
        while time.time() < deadline:
            try:
                probe = socket.create_connection(
                    (handle.host, handle.port), timeout=1
                )
                probe.close()
                time.sleep(0.05)
            except OSError:
                refused = True
                break
        assert refused, "port still accepting after shutdown drain"
        handle.stop()

    def test_server_thread_stop_is_idempotent(self, tmp_path):
        handle = ServerThread(workers=1, cache_dir=tmp_path).start()
        handle.stop()
        handle.stop()  # second stop is a no-op, not an error
