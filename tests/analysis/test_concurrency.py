"""Detection guarantees for the concurrency linter.

Mirrors the mutation harness's pinned-expected-codes pattern
(`tests/analysis/test_mutation.py` over `analysis/mutate.py`): a table
of minimal bad snippets — at least one per CC rule family — each pinned
to the exact codes it must trigger, and a clean twin for each family
that must produce no findings.  A detector that silently stops firing
(or starts over-firing on the idiomatic version) fails here, not in
production triage.
"""

import pathlib
import textwrap
from typing import Dict, FrozenSet, Tuple

import pytest

from repro.analysis.concurrency import (
    CC_CODES,
    ConcurrencyAnalyzer,
    analyze_source,
)

# ----------------------------------------------------------------------
# the fixture table: name -> (bad snippet, pinned expected codes)
# ----------------------------------------------------------------------
BAD_SNIPPETS: Dict[str, Tuple[str, FrozenSet[str]]] = {
    "cc101-unguarded-attr-write": (
        """
        import threading
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0
            def set_guarded(self, v):
                with self._lock:
                    self.value = v
            def set_raw(self, v):
                self.value = v
        """,
        frozenset({"CC101"}),
    ),
    "cc101-unguarded-local-mutation": (
        """
        import threading
        def tally():
            lock = threading.Lock()
            counts = {}
            def worker(key):
                with lock:
                    counts[key] = counts.get(key, 0) + 1
            counts["stray"] = 1
        """,
        frozenset({"CC101"}),
    ),
    "cc102-unguarded-attr-read": (
        """
        import threading
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.items = []
            def add(self, v):
                with self._lock:
                    self.items.append(v)
            def peek(self):
                return self.items
        """,
        frozenset({"CC102"}),
    ),
    "cc201-blocking-sleep-in-async": (
        """
        import time
        async def handler():
            time.sleep(0.5)
        """,
        frozenset({"CC201"}),
    ),
    "cc201-sync-file-io-in-async": (
        """
        import json
        async def read_config(path):
            return json.loads(path.read_text())
        """,
        frozenset({"CC201"}),
    ),
    "cc201-subprocess-in-async": (
        """
        import subprocess
        async def run():
            subprocess.run(["true"])
        """,
        frozenset({"CC201"}),
    ),
    "cc202-future-result-in-async": (
        """
        async def collect(future):
            return future.result()
        """,
        frozenset({"CC202"}),
    ),
    "cc203-fire-and-forget-task": (
        """
        import asyncio
        async def work():
            return 1
        async def go():
            asyncio.create_task(work())
        """,
        frozenset({"CC203"}),
    ),
    "cc301-lock-order-cycle": (
        """
        import threading
        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
            def fwd(self):
                with self._a:
                    with self._b:
                        pass
            def rev(self):
                with self._b:
                    with self._a:
                        pass
        """,
        frozenset({"CC301"}),
    ),
    "cc401-leaked-executor": (
        """
        from concurrent.futures import ThreadPoolExecutor
        def fan_out(tasks):
            pool = ThreadPoolExecutor(max_workers=4)
            return [pool.submit(t) for t in tasks]
        """,
        frozenset({"CC401"}),
    ),
    "cc401-unreleased-self-socket": (
        """
        import socket
        class Client:
            def __init__(self, host, port):
                self._sock = socket.create_connection((host, port))
            def send(self, data):
                self._sock.sendall(data)
        """,
        frozenset({"CC401"}),
    ),
    "cc402-raw-json-dump": (
        """
        import json
        def persist(path, payload):
            with path.open("w") as handle:
                json.dump(payload, handle)
        """,
        frozenset({"CC402"}),
    ),
    "cc402-write-text-dumps": (
        """
        import json
        def persist(path, payload):
            path.write_text(json.dumps(payload, indent=1))
        """,
        frozenset({"CC402"}),
    ),
}

#: name -> clean twin: the same shape written with correct discipline
CLEAN_TWINS: Dict[str, str] = {
    "cc101-guarded-attr-write": """
        import threading
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0
            def set_guarded(self, v):
                with self._lock:
                    self.value = v
            def bump(self):
                with self._lock:
                    self.value += 1
        """,
    "cc101-post-join-aggregation": """
        import threading
        def tally(n):
            lock = threading.Lock()
            total = 0
            def worker():
                nonlocal total
                with lock:
                    total += 1
            threads = [threading.Thread(target=worker) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return total
        """,
    "cc102-guarded-attr-read": """
        import threading
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.items = []
            def add(self, v):
                with self._lock:
                    self.items.append(v)
            def peek(self):
                with self._lock:
                    return list(self.items)
        """,
    "cc201-offloaded-blocking-work": """
        import asyncio
        import time
        async def handler(loop):
            await asyncio.to_thread(time.sleep, 0.5)
            await loop.run_in_executor(None, time.sleep, 0.5)
        """,
    "cc202-awaited-future": """
        import asyncio
        async def collect(future):
            return await asyncio.wrap_future(future)
        """,
    "cc203-retained-task": """
        import asyncio
        async def work():
            return 1
        async def go():
            task = asyncio.create_task(work())
            return await task
        """,
    "cc301-consistent-order": """
        import threading
        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
            def fwd(self):
                with self._a:
                    with self._b:
                        pass
            def also_fwd(self):
                with self._a:
                    with self._b:
                        pass
        """,
    "cc401-with-managed-executor": """
        from concurrent.futures import ThreadPoolExecutor
        def fan_out(tasks):
            with ThreadPoolExecutor(max_workers=4) as pool:
                return [pool.submit(t).result() for t in tasks]
        """,
    "cc401-released-self-socket": """
        import socket
        class Client:
            def __init__(self, host, port):
                self._sock = socket.create_connection((host, port))
            def close(self):
                self._sock.close()
        """,
    "cc402-atomic-publish": """
        import json
        import os
        def persist(path, payload):
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, indent=1))
            os.replace(tmp, path)
        """,
}


def _codes(source: str) -> FrozenSet[str]:
    findings = analyze_source(textwrap.dedent(source))
    return frozenset(f.code for f in findings)


class TestFixtureTable:
    def test_table_covers_every_rule_family(self):
        pinned = frozenset().union(*(c for _, c in BAD_SNIPPETS.values()))
        assert pinned == frozenset(CC_CODES) - {"CC000"} == frozenset(
            {"CC101", "CC102", "CC201", "CC202", "CC203",
             "CC301", "CC401", "CC402"}
        )
        assert len(BAD_SNIPPETS) >= 8

    @pytest.mark.parametrize("name", sorted(BAD_SNIPPETS))
    def test_bad_snippet_is_caught(self, name):
        source, expected = BAD_SNIPPETS[name]
        assert _codes(source) == expected

    @pytest.mark.parametrize("name", sorted(CLEAN_TWINS))
    def test_clean_twin_passes(self, name):
        assert _codes(CLEAN_TWINS[name]) == frozenset()


class TestSuppression:
    def test_noqa_with_code_suppresses(self):
        source, (code,) = BAD_SNIPPETS["cc402-write-text-dumps"][0], tuple(
            BAD_SNIPPETS["cc402-write-text-dumps"][1]
        )
        patched = textwrap.dedent(source).replace(
            "path.write_text(json.dumps(payload, indent=1))",
            f"path.write_text(json.dumps(payload, indent=1))  # noqa: {code}",
        )
        assert analyze_source(patched) == []

    def test_noqa_wrong_code_does_not_suppress(self):
        source = textwrap.dedent(BAD_SNIPPETS["cc402-write-text-dumps"][0])
        patched = source.replace(
            "path.write_text(json.dumps(payload, indent=1))",
            "path.write_text(json.dumps(payload, indent=1))  # noqa: CC101",
        )
        assert {f.code for f in analyze_source(patched)} == {"CC402"}

    def test_bare_noqa_suppresses_everything(self):
        source = textwrap.dedent(BAD_SNIPPETS["cc402-write-text-dumps"][0])
        patched = source.replace(
            "path.write_text(json.dumps(payload, indent=1))",
            "path.write_text(json.dumps(payload, indent=1))  # noqa",
        )
        assert analyze_source(patched) == []


class TestLockOrderGraph:
    def test_nested_with_yields_edge(self):
        analyzer = ConcurrencyAnalyzer()
        analyzer.add_source(textwrap.dedent(
            CLEAN_TWINS["cc301-consistent-order"]
        ))
        edges = analyzer.lock_order_edges()
        assert set(edges) == {("Pair._a", "Pair._b")}

    def test_call_edge_crosses_methods(self):
        analyzer = ConcurrencyAnalyzer()
        analyzer.add_source(textwrap.dedent("""
            import threading
            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._store = Store()
                def update(self):
                    with self._lock:
                        self._store.put(1)
            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                def put(self, v):
                    with self._lock:
                        pass
        """))
        assert ("Outer._lock", "Store._lock") in analyzer.lock_order_edges()

    def test_call_edge_cycle_is_reported(self):
        findings = analyze_source(textwrap.dedent("""
            import threading
            class A:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.peer = B()
                def poke(self):
                    with self._lock:
                        self.peer.poke()
            class B:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.peer = A()
                def poke(self):
                    with self._lock:
                        self.peer.poke()
        """))
        assert "CC301" in {f.code for f in findings}

    def test_exempt_methods_do_not_flag(self):
        # __init__ writes and *_locked helpers are the two sanctioned
        # ways to touch guarded state without holding the lock
        assert _codes("""
            import threading
            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0
                def set(self, v):
                    with self._lock:
                        self._set_locked(v)
                def _set_locked(self, v):
                    self.value = v
        """) == frozenset()


class TestRepoGate:
    def test_repo_source_has_zero_findings(self):
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        assert src.is_dir()
        analyzer = ConcurrencyAnalyzer()
        analyzer.add_paths([src])
        findings = analyzer.analyze()
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_repo_static_lock_graph_is_acyclic(self):
        from repro.utils.sync import find_cycle

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        analyzer = ConcurrencyAnalyzer()
        analyzer.add_paths([src])
        assert find_cycle(analyzer.lock_order_edges()) is None
