"""The static verification method end to end: verify_pattern, the batch
runner's lint column, and the ``repro lint`` CLI."""

import pytest

from repro.circuit.benchmarks import get_benchmark
from repro.core.validate import verify_pattern
from repro.mbqc.translate import circuit_to_pattern


class TestVerifyStatic:
    def test_certifies_circuit_too_large_for_statevector(self):
        """Acceptance criterion: QFT-24 is non-Clifford with 24 outputs
        (past the dense limit of 12) — statically certifiable where the
        dense engine cannot go."""
        circuit = get_benchmark("QFT", 24, seed=7)
        report = verify_pattern(circuit, method="static")
        assert report.ok is True
        assert report.method == "static"
        assert "determinism certified" in report.detail

    def test_auto_falls_back_to_static_past_dense_limit(self):
        circuit = get_benchmark("QFT", 16, seed=7)
        report = verify_pattern(circuit)
        assert report.ok is True and report.method == "static"
        assert "fell back to static" in report.detail

    def test_static_detail_states_the_weaker_claim(self):
        report = verify_pattern(get_benchmark("QFT", 8, seed=7), method="static")
        assert report.ok is True
        assert "angles not checked" in report.detail

    def test_static_fails_on_corrupted_pattern(self):
        circuit = get_benchmark("BV", 8, seed=7)
        pattern = circuit_to_pattern(circuit)
        victim = next(n for n in pattern.x_deps if pattern.x_deps[n])
        pattern.x_deps[victim] = frozenset()
        report = verify_pattern(circuit, pattern=pattern, method="static")
        assert report.ok is False
        assert "lint error" in report.detail

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown verification method"):
            verify_pattern(get_benchmark("BV", 8, seed=7), method="oracle")

    def test_forced_stabilizer_on_non_clifford_rejected(self):
        with pytest.raises(ValueError, match="Clifford"):
            verify_pattern(get_benchmark("QFT", 8, seed=7), method="stabilizer")

    def test_auto_still_prefers_executing_engines(self):
        # Clifford -> stabilizer; small dense -> statevector (unchanged)
        assert verify_pattern(get_benchmark("BV", 8, seed=7)).method == (
            "stabilizer"
        )
        assert verify_pattern(get_benchmark("QFT", 4, seed=7)).method == (
            "statevector"
        )


class TestBatchLintColumn:
    def test_lint_spec_populates_lint_issues(self):
        from repro.eval.batch import RunSpec, execute_spec

        record = execute_spec(
            RunSpec(
                benchmark="BV",
                num_qubits=8,
                lint=True,
                include_baseline=False,
            )
        )
        assert record.lint_issues == 0

    def test_lint_issues_column_is_in_schema(self):
        from repro.eval.batch import RUN_TABLE_COLUMNS, SCHEMA_VERSION

        assert SCHEMA_VERSION >= 6  # v6 introduced the column
        assert "lint_issues" in RUN_TABLE_COLUMNS

    def test_lint_defaults_off(self):
        from repro.eval.batch import RunSpec, execute_spec

        record = execute_spec(
            RunSpec(benchmark="BV", num_qubits=8, include_baseline=False)
        )
        assert record.lint_issues is None


class TestLintCLI:
    def test_lint_command_exits_zero_on_clean_benchmark(self, capsys):
        from repro.cli import main

        code = main(["lint", "--benchmark", "BV", "--qubits", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out and "deterministic" in out

    def test_lint_frame_and_compile_flags(self, capsys):
        from repro.cli import main

        code = main(
            ["lint", "--benchmark", "BV", "--qubits", "8",
             "--frame", "--compile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "frame program" in out and "compiled program" in out

    def test_lint_frame_skips_non_clifford(self, capsys):
        from repro.cli import main

        code = main(["lint", "--benchmark", "QFT", "--qubits", "4", "--frame"])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipped (non-Clifford" in out
