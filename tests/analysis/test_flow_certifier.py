"""Flow / gflow certification: proofs, counterexamples, benchmark pins."""

import networkx as nx
import pytest

from repro.analysis.flow import (
    certify_pattern,
    find_causal_flow,
    find_gflow,
    flow_corrections,
)
from repro.circuit.benchmarks import get_benchmark
from repro.mbqc.pattern import MeasurementPattern
from repro.mbqc.translate import circuit_to_pattern


def _pattern(edges, inputs, outputs, angle=0.3):
    graph = nx.Graph(edges)
    measured = set(graph.nodes()) - set(outputs)
    return MeasurementPattern(
        graph=graph,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        angles={v: angle for v in measured},
    )


class TestCausalFlow:
    def test_path_graph_has_line_flow(self):
        graph = nx.Graph([(1, 2), (2, 3)])
        result = find_causal_flow(graph, [1], [3])
        assert result is not None
        f, layer_of = result
        assert f == {2: 3, 1: 2}
        # outputs at layer 0, earlier-measured nodes higher
        assert layer_of[3] == 0
        assert layer_of[2] == 1
        assert layer_of[1] == 2

    def test_flow_corrections_on_path(self):
        graph = nx.Graph([(1, 2), (2, 3)])
        f, _ = find_causal_flow(graph, [1], [3])
        x_map, z_map = flow_corrections(graph, [3], f)
        # measuring 1 -> X on f(1)=2, Z on N(2)\{1}={3};
        # measuring 2 -> X on f(2)=3, Z on N(3)\{2}={}
        assert x_map[2] == frozenset({1})
        assert x_map[3] == frozenset({2})
        assert z_map[3] == frozenset({1})
        assert z_map[1] == frozenset()

    def test_output_only_graph_is_trivially_deterministic(self):
        pattern = _pattern([(1, 2)], inputs=[1, 2], outputs=[1, 2])
        cert = certify_pattern(pattern)
        assert cert.ok and cert.kind == "flow" and cert.depth == 0

    def test_stall_when_every_output_has_two_unmeasured_neighbours(self):
        # K_{1,2} star measured at both leaves: output 3 sees two
        # unprocessed neighbours forever, so the round-based search
        # cannot start
        graph = nx.Graph([(1, 3), (2, 3)])
        assert find_causal_flow(graph, [1, 2], [3]) is None


class TestGflow:
    # Open graph with a gflow but no causal flow (hand-checked):
    # measured inputs {1,2,3}, outputs {4,5,6},
    # adjacency columns over GF(2) are c4=[1,0,1], c5=[1,1,1],
    # c6=[0,1,1] — full rank, so every e_u is a column combination
    # (g(1)={5,6}, g(2)={4,5}, g(3)={4,5,6}), but no *single* column is
    # an e_u, so no successor function exists.
    GFLOW_EDGES = [(1, 4), (1, 5), (2, 5), (2, 6), (3, 4), (3, 5), (3, 6)]

    def test_gflow_without_causal_flow(self):
        graph = nx.Graph(self.GFLOW_EDGES)
        assert find_causal_flow(graph, [1, 2, 3], [4, 5, 6]) is None
        result = find_gflow(graph, [1, 2, 3], [4, 5, 6])
        assert result is not None
        g, layer_of = result
        assert g[1] == frozenset({5, 6})
        assert g[2] == frozenset({4, 5})
        assert g[3] == frozenset({4, 5, 6})
        assert all(layer_of[u] == 1 for u in (1, 2, 3))

    def test_certificate_kind_is_gflow(self):
        pattern = _pattern(
            self.GFLOW_EDGES, inputs=[1, 2, 3], outputs=[4, 5, 6]
        )
        cert = certify_pattern(pattern)
        assert cert.ok and cert.kind == "gflow"
        assert cert.successor == {}
        assert cert.corrector[1] == frozenset({5, 6})
        assert "deterministic" in cert.summary()

    def test_gflow_correction_sets_isolate_their_vertex(self):
        graph = nx.Graph(self.GFLOW_EDGES)
        g, _ = find_gflow(graph, [1, 2, 3], [4, 5, 6])
        for u, K in g.items():
            odd = set()
            for c in K:
                odd ^= set(graph.neighbors(c))
            assert odd & {1, 2, 3} == {u}


class TestNoDeterminism:
    # 6-cycle with alternating measured/output vertices: the output
    # adjacency matrix has rows summing to zero over GF(2), so no e_u is
    # reachable and no gflow (hence no flow) exists.
    CYCLE_EDGES = [(1, 4), (3, 4), (3, 6), (2, 6), (2, 5), (1, 5)]

    def test_cycle_has_no_flow_of_any_kind(self):
        graph = nx.Graph(self.CYCLE_EDGES)
        assert find_causal_flow(graph, [1, 2, 3], [4, 5, 6]) is None
        assert find_gflow(graph, [1, 2, 3], [4, 5, 6]) is None

    def test_counterexample_is_localized(self):
        pattern = _pattern(
            self.CYCLE_EDGES, inputs=[1, 2, 3], outputs=[4, 5, 6]
        )
        cert = certify_pattern(pattern)
        assert not cert.ok and cert.kind == "none"
        assert cert.violation is not None
        # every measured vertex stalls; the canonical witness is the
        # smallest
        assert set(cert.violation.stalled) == {1, 2, 3}
        assert cert.violation.node == 1
        assert "no determinism certificate" in cert.summary()


class TestBenchmarkPatterns:
    @pytest.mark.parametrize(
        "name,qubits", [("QFT", 8), ("QAOA", 8), ("RCA", 8), ("BV", 16)]
    )
    def test_translated_patterns_certify_with_causal_flow(self, name, qubits):
        pattern = circuit_to_pattern(get_benchmark(name, qubits, seed=7))
        cert = certify_pattern(pattern)
        assert cert.ok and cert.kind == "flow"
        assert cert.depth >= 1

    def test_translator_corrections_equal_flow_induced(self):
        """The translation *is* the causal-flow construction: recorded
        x/z dependency sets match the flow-induced ones node for node.
        This equality is what lets the linter catch dropped corrections
        statically."""
        pattern = circuit_to_pattern(get_benchmark("QFT", 8, seed=7))
        cert = certify_pattern(pattern)
        x_map, z_map = flow_corrections(
            pattern.graph, pattern.outputs, cert.successor
        )
        outputs = set(pattern.outputs)
        for v in pattern.graph.nodes():
            if v in outputs:
                assert pattern.output_x.get(v, frozenset()) == x_map[v]
                assert pattern.output_z.get(v, frozenset()) == z_map[v]
            else:
                assert pattern.x_deps.get(v, frozenset()) == x_map[v]
                assert pattern.z_deps.get(v, frozenset()) == z_map[v]

    def test_flow_layers_respect_measurement_order(self):
        """Layers decrease (weakly) along the translator's chronological
        sequence, and every node is measured strictly before its
        successor."""
        pattern = circuit_to_pattern(get_benchmark("QAOA", 8, seed=7))
        cert = certify_pattern(pattern)
        pos = {v: i for i, v in enumerate(pattern.sequence)}
        for u, v in cert.successor.items():
            if v in pos:  # successor may be an output (never measured)
                assert pos[u] < pos[v]
        for u in pattern.sequence:
            assert cert.layer_of[u] >= 1
