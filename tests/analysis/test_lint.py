"""PatternLinter: clean artifacts pass, seeded defects produce the
pinned codes, reports render usefully."""

import dataclasses
import math

import networkx as nx
import pytest

from repro.analysis.lint import (
    PatternLinter,
    lint_compiled_program,
    lint_frame_program,
    lint_pattern,
)
from repro.circuit.benchmarks import get_benchmark
from repro.mbqc.pattern import MeasurementPattern
from repro.mbqc.translate import circuit_to_pattern


def _line_pattern():
    """1-2-3 path: measure 1 then 2, output 3 (textbook causal flow)."""
    graph = nx.Graph([(1, 2), (2, 3)])
    return MeasurementPattern(
        graph=graph,
        inputs=(1,),
        outputs=(3,),
        angles={1: 0.0, 2: 0.0},
        x_deps={2: frozenset({1})},
        output_x={3: frozenset({2})},
        output_z={3: frozenset({1})},
        sequence=(1, 2),
    )


class TestPatternLint:
    def test_clean_line_pattern(self):
        report = lint_pattern(_line_pattern(), name="line")
        assert report.ok, report.render()
        assert report.certificate is not None and report.certificate.ok
        assert "line: clean" in report.summary()

    @pytest.mark.parametrize(
        "name,qubits", [("QFT", 8), ("QAOA", 8), ("BV", 16)]
    )
    def test_benchmark_patterns_lint_clean(self, name, qubits):
        pattern = circuit_to_pattern(get_benchmark(name, qubits, seed=7))
        report = lint_pattern(pattern, name=f"{name}-{qubits}")
        assert report.ok, report.render()

    def test_missing_basis(self):
        bad = _line_pattern()
        del bad.angles[2]
        report = lint_pattern(bad)
        assert "P001" in report.codes() and not report.ok

    def test_output_measured(self):
        bad = _line_pattern()
        bad.angles[3] = 0.0
        assert "P002" in lint_pattern(bad).codes()

    def test_unknown_dependency_node(self):
        bad = _line_pattern()
        bad.x_deps[2] = frozenset({99})
        assert "P003" in lint_pattern(bad).codes()

    def test_unmeasured_source(self):
        bad = _line_pattern()
        bad.x_deps[2] = frozenset({3})  # 3 is an output, never measured
        assert "P004" in lint_pattern(bad).codes()

    def test_forward_reference(self):
        bad = _line_pattern()
        bad.sequence = (2, 1)  # 2 depends on 1 but is measured first
        assert "P005" in lint_pattern(bad).codes()

    def test_dependency_cycle(self):
        bad = _line_pattern()
        bad.x_deps[1] = frozenset({2})  # closes 1 -> 2 -> 1
        report = lint_pattern(bad)
        assert "P006" in report.codes()
        [cycle_issue] = [i for i in report.issues if i.code == "P006"]
        assert "->" in cycle_issue.message

    def test_sequence_mismatch(self):
        bad = _line_pattern()
        bad.sequence = (1,)
        assert "P007" in lint_pattern(bad).codes()

    def test_non_finite_angle(self):
        bad = _line_pattern()
        bad.angles[1] = math.nan
        assert "P008" in lint_pattern(bad).codes()

    def test_self_dependency(self):
        bad = _line_pattern()
        bad.z_deps[2] = frozenset({2})
        assert "P009" in lint_pattern(bad).codes()

    def test_self_loop_edge(self):
        bad = _line_pattern()
        bad.graph.add_edge(2, 2)
        assert "P011" in lint_pattern(bad).codes()

    def test_no_determinism_counterexample(self):
        # 6-cycle alternating measured/output: no flow, no gflow
        graph = nx.Graph(
            [(1, 4), (3, 4), (3, 6), (2, 6), (2, 5), (1, 5)]
        )
        pattern = MeasurementPattern(
            graph=graph,
            inputs=(1, 2, 3),
            outputs=(4, 5, 6),
            angles={1: 0.3, 2: 0.3, 3: 0.3},
        )
        report = lint_pattern(pattern)
        assert "F001" in report.codes() and not report.ok
        [issue] = [i for i in report.issues if i.code == "F001"]
        assert issue.where == 1  # smallest stalled vertex

    def test_dropped_correction_is_flagged(self):
        bad = _line_pattern()
        bad.x_deps[2] = frozenset()
        report = lint_pattern(bad)
        assert "F002" in report.codes()

    def test_dropped_byproduct_is_flagged(self):
        bad = _line_pattern()
        bad.output_z[3] = frozenset()
        assert "F004" in lint_pattern(bad).codes()

    def test_certify_off_skips_flow_search(self):
        linter = PatternLinter(certify=False)
        report = linter.lint_pattern(_line_pattern())
        assert report.ok and report.certificate is None

    def test_issue_render_contains_code_and_location(self):
        bad = _line_pattern()
        del bad.angles[2]
        report = lint_pattern(bad, name="broken")
        text = report.render()
        assert "broken" in text and "P001" in text and "@ 2" in text


class TestFrameProgramLint:
    @pytest.fixture()
    def compiled(self):
        from repro.sim.frame import FrameProgram
        from repro.sim.stabilizer import StabilizerState

        circuit = get_benchmark("BV", 8, seed=7)
        pattern = circuit_to_pattern(circuit)
        state = StabilizerState(circuit.num_qubits)
        state.apply_circuit(circuit)
        _, index = StabilizerState.graph_state(
            pattern.graph, zero_nodes=pattern.inputs
        )
        program = FrameProgram.compile(
            pattern, state.stabilizer_rows(), index
        )
        return pattern, program

    def test_clean_frame_program(self, compiled):
        pattern, program = compiled
        report = lint_frame_program(program, pattern)
        assert report.ok, report.render()

    def test_flipped_basis(self, compiled):
        pattern, program = compiled
        steps = list(program.steps)
        steps[0] = dataclasses.replace(steps[0], y_basis=not steps[0].y_basis)
        bad = dataclasses.replace(program, steps=tuple(steps))
        assert "R003" in lint_frame_program(bad, pattern).codes()

    def test_forward_reference(self, compiled):
        pattern, program = compiled
        steps = list(program.steps)
        steps[0] = dataclasses.replace(steps[0], z_deps=(0,))
        bad = dataclasses.replace(program, steps=tuple(steps))
        assert "R002" in lint_frame_program(bad, pattern).codes()

    def test_missing_step(self, compiled):
        pattern, program = compiled
        bad = dataclasses.replace(program, steps=program.steps[:-1])
        assert "R001" in lint_frame_program(bad, pattern).codes()

    def test_dropped_parity_check(self, compiled):
        pattern, program = compiled
        bad = dataclasses.replace(program, checks=program.checks[:-1])
        assert "R006" in lint_frame_program(bad, pattern).codes()

    def test_check_out_of_range(self, compiled):
        pattern, program = compiled
        checks = list(program.checks)
        checks[0] = dataclasses.replace(
            checks[0], frame_x=(program.num_qubits,)
        )
        bad = dataclasses.replace(program, checks=tuple(checks))
        assert "R007" in lint_frame_program(bad, pattern).codes()


class TestCompiledProgramLint:
    @pytest.fixture()
    def compiled(self):
        from repro.core.compiler import OneQCompiler, OneQConfig
        from repro.eval.experiments import _hardware_for
        from repro.hardware.resource_state import get_resource_state

        hardware = _hardware_for(8, get_resource_state("3-line"))
        program = OneQCompiler(OneQConfig(hardware=hardware)).compile(
            get_benchmark("BV", 8, seed=7), name="BV-8"
        )
        return program, hardware

    def test_clean_program(self, compiled):
        program, hardware = compiled
        report = lint_compiled_program(program, hardware)
        assert report.ok, report.render()
        assert report.artifact == "BV-8"

    def test_photon_deficit(self, compiled):
        program, hardware = compiled
        bad = dataclasses.replace(program, photon_deficit=3)
        assert "B001" in lint_compiled_program(bad, hardware).codes()

    def test_budget_reconciliation(self, compiled):
        program, hardware = compiled
        bad = dataclasses.replace(
            program, resource_states_used=program.resource_states_used + 1
        )
        assert "B002" in lint_compiled_program(bad, hardware).codes()

    def test_layer_count_mismatch(self, compiled):
        program, hardware = compiled
        bad = dataclasses.replace(
            program, mapping_layers=program.mapping_layers + 1
        )
        codes = lint_compiled_program(bad, hardware).codes()
        assert "B004" in codes


class TestCompilerLintStage:
    def test_lint_flag_records_stage_and_passes(self):
        from repro.core.compiler import OneQCompiler, OneQConfig
        from repro.eval.experiments import _hardware_for
        from repro.hardware.resource_state import get_resource_state

        hardware = _hardware_for(8, get_resource_state("3-line"))
        program = OneQCompiler(
            OneQConfig(hardware=hardware, lint=True)
        ).compile(get_benchmark("BV", 8, seed=7), name="BV-8")
        assert "lint" in program.stage_seconds

    def test_lint_flag_aborts_on_broken_pattern(self):
        from repro.core.compiler import OneQCompiler, OneQConfig
        from repro.core.validate import ValidationError
        from repro.eval.experiments import _hardware_for
        from repro.hardware.resource_state import get_resource_state

        pattern = circuit_to_pattern(get_benchmark("BV", 8, seed=7))
        del pattern.angles[next(iter(pattern.angles))]
        hardware = _hardware_for(8, get_resource_state("3-line"))
        compiler = OneQCompiler(OneQConfig(hardware=hardware, lint=True))
        with pytest.raises(ValidationError, match="static lint"):
            compiler.compile_pattern(pattern, name="broken")
