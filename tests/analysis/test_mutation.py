"""Mutation harness: every seeded corruption class must be caught.

This is the linter's own validation — acceptance criterion for the
analysis layer.  The harness corrupts known-good benchmark artifacts
one class at a time and requires the pinned lint codes to fire.
"""

import pytest

from repro.analysis.mutate import (
    FRAME_MUTATIONS,
    MUTATION_EXPECTED_CODES,
    PATTERN_MUTATIONS,
    MutationError,
    corrupt_frame_program,
    corrupt_pattern,
    harness_report,
)
from repro.circuit.benchmarks import get_benchmark
from repro.mbqc.translate import circuit_to_pattern


@pytest.fixture(scope="module")
def bv_artifacts():
    from repro.sim.frame import FrameProgram
    from repro.sim.stabilizer import StabilizerState

    circuit = get_benchmark("BV", 16, seed=7)
    pattern = circuit_to_pattern(circuit)
    state = StabilizerState(circuit.num_qubits)
    state.apply_circuit(circuit)
    _, index = StabilizerState.graph_state(
        pattern.graph, zero_nodes=pattern.inputs
    )
    program = FrameProgram.compile(pattern, state.stabilizer_rows(), index)
    return pattern, program


class TestHarness:
    def test_every_mutation_class_is_caught_on_bv(self, bv_artifacts):
        """The headline guarantee: all pattern AND frame corruption
        classes fire their pinned codes on a real compiled benchmark."""
        pattern, program = bv_artifacts
        results = harness_report(pattern, frame_program=program)
        # every class must have found a mutation site on this artifact
        assert all(r["caught"] is not None for r in results.values()), {
            m: r["caught"] for m, r in results.items()
        }
        missed = {
            m: (sorted(r["expected"]), sorted(r["found"]))
            for m, r in results.items()
            if not r["caught"]
        }
        assert not missed, missed
        # the issue requires >= 6 distinct corruption classes
        assert len(results) >= 6

    def test_pattern_only_harness_on_non_clifford(self):
        pattern = circuit_to_pattern(get_benchmark("QFT", 8, seed=7))
        results = harness_report(pattern)
        assert set(results) == set(PATTERN_MUTATIONS)
        assert all(r["caught"] for r in results.values()), results

    def test_expected_codes_cover_all_mutations(self):
        assert set(MUTATION_EXPECTED_CODES) == set(
            PATTERN_MUTATIONS + FRAME_MUTATIONS
        )


class TestCorruptPattern:
    def test_mutations_do_not_touch_the_original(self, bv_artifacts):
        pattern, _ = bv_artifacts
        from repro.analysis.lint import lint_pattern

        for mutation in PATTERN_MUTATIONS:
            corrupt_pattern(pattern, mutation)
        assert lint_pattern(pattern).ok

    def test_unknown_mutation_rejected(self, bv_artifacts):
        pattern, program = bv_artifacts
        with pytest.raises(ValueError, match="unknown pattern mutation"):
            corrupt_pattern(pattern, "blow-up")
        with pytest.raises(ValueError, match="unknown frame mutation"):
            corrupt_frame_program(program, "blow-up")

    def test_no_site_raises_mutation_error(self):
        import networkx as nx

        from repro.mbqc.pattern import MeasurementPattern

        # single measured node with no dependencies at all
        pattern = MeasurementPattern(
            graph=nx.Graph([(1, 2)]),
            inputs=(1,),
            outputs=(2,),
            angles={1: 0.0},
            sequence=(1,),
        )
        with pytest.raises(MutationError):
            corrupt_pattern(pattern, "drop-x-correction")

    def test_harness_refuses_a_dirty_baseline(self, bv_artifacts):
        pattern, _ = bv_artifacts
        bad = corrupt_pattern(pattern, "measure-output")
        with pytest.raises(MutationError, match="clean baseline"):
            harness_report(bad)
