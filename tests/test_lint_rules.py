"""The custom AST lint rules in scripts/lint_rules.py."""

import importlib.util
import pathlib
import sys

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[1] / "scripts" / "lint_rules.py"
)
_spec = importlib.util.spec_from_file_location("lint_rules", _SCRIPT)
lint_rules = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("lint_rules", lint_rules)
_spec.loader.exec_module(lint_rules)


def codes(source: str):
    return [f.code for f in lint_rules.check_source(source)]


class TestLR001UnseededRNG:
    def test_zero_arg_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["LR001"]

    def test_seeded_default_rng_is_fine(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert codes(src) == []

    def test_seed_sequence_default_rng_is_fine(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(np.random.SeedSequence(3))\n"
        )
        assert codes(src) == []

    @pytest.mark.parametrize(
        "call", ["rand(3)", "randint(0, 2)", "choice([1, 2])", "seed(0)"]
    )
    def test_legacy_global_samplers(self, call):
        src = f"import numpy as np\nx = np.random.{call}\n"
        assert codes(src) == ["LR001"]

    def test_respects_numpy_alias(self):
        src = "import numpy\nx = numpy.random.rand()\n"
        assert codes(src) == ["LR001"]

    def test_unrelated_random_attribute_ignored(self):
        # some_obj.random.rand is not numpy's global state
        src = "x = simulator.random.rand()\n"
        assert codes(src) == []


class TestLR002FloatEquality:
    def test_probability_equality(self):
        assert codes("ok = p == 0.5\n") == ["LR002"]

    def test_not_equal_also_flagged(self):
        assert codes("ok = 0.75 != q\n") == ["LR002"]

    def test_integral_floats_allowed(self):
        assert codes("ok = theta == 1.0 or theta == 0.0\n") == []

    def test_ordering_comparisons_allowed(self):
        assert codes("ok = p < 0.5\n") == []


class TestLR003MutableDefaults:
    def test_list_default(self):
        assert codes("def f(acc=[]):\n    return acc\n") == ["LR003"]

    def test_dict_and_set_defaults(self):
        src = "def f(a={}, b=set()):\n    return a, b\n"
        assert codes(src) == ["LR003", "LR003"]

    def test_none_default_is_fine(self):
        assert codes("def f(acc=None):\n    return acc or []\n") == []

    def test_tuple_default_is_fine(self):
        assert codes("def f(dims=()):\n    return dims\n") == []


class TestLR004SwallowedExceptions:
    def test_bare_except_pass(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        assert codes(src) == ["LR004"]

    def test_except_exception_pass(self):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert codes(src) == ["LR004"]

    def test_except_base_exception_pass(self):
        src = "try:\n    work()\nexcept BaseException:\n    pass\n"
        assert codes(src) == ["LR004"]

    def test_broad_type_in_tuple_flagged(self):
        src = "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n"
        assert codes(src) == ["LR004"]

    def test_narrow_except_pass_is_fine(self):
        src = "try:\n    work()\nexcept OSError:\n    pass\n"
        assert codes(src) == []

    def test_handled_broad_except_is_fine(self):
        src = "try:\n    work()\nexcept Exception as exc:\n    log(exc)\n"
        assert codes(src) == []

    def test_test_files_exempt(self):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        for path in (
            pathlib.Path("tests/serve/test_x.py"),
            pathlib.Path("src/repro/test_helper.py"),
            pathlib.Path("tests/conftest.py"),
        ):
            assert lint_rules.check_source(src, path) == []
        assert [
            f.code
            for f in lint_rules.check_source(
                src, pathlib.Path("src/repro/serve/server.py")
            )
        ] == ["LR004"]

    def test_noqa_suppresses(self):
        src = "try:\n    work()\nexcept Exception:  # noqa: LR004\n    pass\n"
        assert codes(src) == []


class TestSuppression:
    def test_targeted_noqa(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # noqa: LR001\n"
        )
        assert codes(src) == []

    def test_bare_noqa(self):
        src = "ok = p == 0.5  # noqa\n"
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "ok = p == 0.5  # noqa: LR003\n"
        assert codes(src) == ["LR002"]


class TestCLI:
    def test_repo_sources_are_clean(self):
        """The gate CI enforces: src/, scripts/, examples/, benchmarks/
        carry no findings."""
        root = _SCRIPT.parents[1]
        paths = [
            root / name
            for name in ("src", "scripts", "examples", "benchmarks")
            if (root / name).exists()
        ]
        findings = lint_rules.check_paths(paths)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_missing_path_is_an_error(self, capsys):
        assert lint_rules.main(["definitely/not/here"]) == 2

    def test_syntax_error_reported_as_lr000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_rules.check_paths([bad])
        assert [f.code for f in findings] == ["LR000"]
