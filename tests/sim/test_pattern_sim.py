"""Tests for the lazy pattern simulator's internals and edge cases."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.circuit import Circuit, qft
from repro.mbqc import circuit_to_pattern
from repro.mbqc.pattern import MeasurementPattern
from repro.sim.pattern_sim import PatternSimulator, simulate_pattern
from repro.sim.statevector import simulate, states_equal_up_to_phase


class TestWindowManagement:
    def test_active_window_stays_small(self):
        """Lazy execution keeps ~(wires+1) qubits live, not #nodes."""
        pattern = circuit_to_pattern(qft(4))
        sim = PatternSimulator(pattern, seed=0, max_active=7)
        result = sim.run()  # would raise if the window exceeded 7
        assert len(result.state) == 2**4

    def test_window_guard_trips(self):
        pattern = circuit_to_pattern(qft(4))
        sim = PatternSimulator(pattern, seed=0, max_active=2)
        with pytest.raises(RuntimeError, match="active window"):
            sim.run()

    def test_outcomes_recorded_for_all_measured(self):
        pattern = circuit_to_pattern(qft(3))
        result = simulate_pattern(pattern, seed=1)
        assert set(result.outcomes) == set(pattern.measured_nodes())

    def test_state_normalized(self):
        pattern = circuit_to_pattern(qft(3))
        result = simulate_pattern(pattern, seed=2)
        assert np.linalg.norm(result.state) == pytest.approx(1.0)


class TestForcedOutcomes:
    def test_all_zero_branch(self):
        c = Circuit(2).h(0).t(0).cx(0, 1)
        pattern = circuit_to_pattern(c)
        forced = {v: 0 for v in pattern.measured_nodes()}
        result = PatternSimulator(pattern, force_outcomes=forced).run()
        assert all(v == 0 for v in result.outcomes.values())
        assert states_equal_up_to_phase(simulate(c), result.state)

    def test_mixed_forcing(self):
        c = Circuit(1).t(0).h(0).t(0).h(0)
        pattern = circuit_to_pattern(c)
        measured = list(pattern.measurement_order())
        forced = {measured[0]: 1}
        result = PatternSimulator(pattern, seed=5, force_outcomes=forced).run()
        assert result.outcomes[measured[0]] == 1
        assert states_equal_up_to_phase(simulate(c), result.state)


class TestRerun:
    def test_simulator_reusable(self):
        c = Circuit(2).h(0).cx(0, 1).t(1)
        pattern = circuit_to_pattern(c)
        sim = PatternSimulator(pattern, seed=0)
        a = sim.run()
        b = sim.run()
        psi = simulate(c)
        assert states_equal_up_to_phase(psi, a.state)
        assert states_equal_up_to_phase(psi, b.state)


class TestHandCraftedPatterns:
    def test_single_node_identity(self):
        """A pattern with one node (input=output) returns the input."""
        graph = nx.Graph()
        graph.add_node(0)
        pattern = MeasurementPattern(
            graph=graph, inputs=(0,), outputs=(0,), angles={}
        )
        result = simulate_pattern(pattern, seed=0)
        assert np.allclose(result.state, [1.0, 0.0])

    def test_two_node_j_pattern(self):
        """E12 then M1 at -alpha implements J(alpha) (the core identity)."""
        alpha = 0.77
        graph = nx.path_graph(2)
        pattern = MeasurementPattern(
            graph=graph,
            inputs=(0,),
            outputs=(1,),
            angles={0: -alpha},
            output_x={1: frozenset({0})},
            sequence=(0,),
        )
        result = PatternSimulator(pattern, force_outcomes={0: 0}).run()
        expected = simulate(Circuit(1).j(alpha, 0))
        assert states_equal_up_to_phase(expected, result.state)

    def test_two_node_j_pattern_one_branch(self):
        """The s=1 branch is fixed by the X byproduct."""
        alpha = 1.1
        graph = nx.path_graph(2)
        pattern = MeasurementPattern(
            graph=graph,
            inputs=(0,),
            outputs=(1,),
            angles={0: -alpha},
            output_x={1: frozenset({0})},
            sequence=(0,),
        )
        result = PatternSimulator(pattern, force_outcomes={0: 1}).run()
        expected = simulate(Circuit(1).j(alpha, 0))
        assert states_equal_up_to_phase(expected, result.state)

    def test_cz_only_pattern(self):
        """Two input/output nodes with an edge = a CZ gate."""
        graph = nx.path_graph(2)
        pattern = MeasurementPattern(
            graph=graph, inputs=(0, 1), outputs=(0, 1), angles={}
        )
        plus = np.array([1, 1], dtype=complex) / math.sqrt(2)
        result = PatternSimulator(pattern).run(
            input_state={0: plus, 1: plus}
        )
        expected = simulate(Circuit(2).h(0).h(1).cz(0, 1))
        assert states_equal_up_to_phase(expected, result.state)

    def test_zero_probability_forcing_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 1)
        pattern = MeasurementPattern(
            graph=graph,
            inputs=(0,),
            outputs=(1,),
            angles={0: 0.0},
            sequence=(0,),
        )
        # input |+>: measuring X on a disentangled... use |0> input: the
        # E(0) measurement of CZ|0>|+> has both outcomes possible, so
        # instead force onto a deterministic case: input |+> along X with
        # no entanglement would need a disconnected graph; keep simple --
        # both outcomes possible here, forcing works for 0 and 1:
        for force in (0, 1):
            PatternSimulator(pattern, force_outcomes={0: force}).run()
