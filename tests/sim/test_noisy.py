"""Tests for the Monte-Carlo noisy-execution sampler.

The agreement gate in :class:`TestAnalyticAgreement` is the CI-enforced
cross-validation between the sampled and closed-form noise models: the
Monte-Carlo fault-free shot rate must reproduce
``repro.hardware.noise.success_probability`` within 3-sigma binomial
error on Clifford benchmarks at >= 2000 shots.
"""

import pytest

from repro.circuit import get_benchmark
from repro.core import compile_circuit, estimate_yield
from repro.hardware import HardwareConfig
from repro.hardware.noise import DEFAULT_NOISE, NoiseModel
from repro.mbqc.translate import circuit_to_pattern
from repro.sim.noisy import FaultCounts, NoisySampler, sample_yield

QUIET = NoiseModel(
    fusion_success=1.0, fusion_error=0.0, cycle_loss=0.0, measurement_error=0.0
)


class TestFaultCounts:
    def test_from_pattern(self):
        pattern = circuit_to_pattern(get_benchmark("BV", 8))
        counts = FaultCounts.from_pattern(pattern)
        assert counts.fusions == pattern.num_edges
        assert counts.measurements == pattern.num_nodes
        assert counts.photon_cycles == pattern.num_nodes

    def test_from_program_matches_program_log_fidelity(self):
        from repro.hardware.noise import program_log_fidelity

        program = compile_circuit(
            get_benchmark("BV", 8), HardwareConfig.square(8)
        )
        counts = FaultCounts.from_program(program)
        assert counts.fusions == program.num_fusions
        assert counts.measurements == program.pattern_nodes
        assert counts.photon_cycles == program.resource_states_used * 3
        import math

        assert counts.analytic_yield(DEFAULT_NOISE) == pytest.approx(
            math.exp(program_log_fidelity(program, DEFAULT_NOISE))
        )

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultCounts(fusions=-1, measurements=0, photon_cycles=0)


class TestAnalyticAgreement:
    """CI gate: sampled vs closed-form yields must cross-validate."""

    def test_fault_free_rate_within_3_sigma(self):
        """>= 2000 shots on a Clifford benchmark, default noise model."""
        result = sample_yield(get_benchmark("BV", 16), shots=2500, seed=11)
        assert result.shots == 2500
        assert result.agrees_with_analytic(3.0), result.summary()
        # executed logical yield can only improve on the fault-free rate
        # (benign faults pass the stabilizer check, malignant ones fail)
        assert result.yield_mc >= result.fault_free_yield

    def test_loss_only_yield_agrees_exactly(self):
        """With loss as the only channel every fault aborts, so the
        executed Monte-Carlo yield IS the fault-free rate and must agree
        with the analytic prediction directly."""
        model = NoiseModel(
            fusion_error=0.0, cycle_loss=0.02, measurement_error=0.0
        )
        result = sample_yield(
            get_benchmark("BV", 16), shots=5000, model=model, seed=3
        )
        assert result.yield_mc == result.fault_free_yield
        assert result.executed == 0  # heralded aborts never hit the tableau
        assert result.agrees_with_analytic(3.0), result.summary()

    def test_compiled_program_counts_agree(self):
        """The bench plumbing path: fault counts from a compiled program."""
        circuit = get_benchmark("BV", 8)
        program = compile_circuit(circuit, HardwareConfig.square(8))
        result = sample_yield(
            circuit,
            shots=2000,
            counts=FaultCounts.from_program(program),
            seed=17,
        )
        assert result.agrees_with_analytic(3.0), result.summary()

    def test_expected_fusion_attempts(self):
        """Repeat-until-success attempts average 1/fusion_success."""
        result = sample_yield(get_benchmark("BV", 16), shots=2000, seed=5)
        expected = 1.0 / DEFAULT_NOISE.fusion_success
        assert result.attempts_per_fusion == pytest.approx(expected, rel=0.05)

    def test_attempts_per_fusion_unbiased_on_lossy_model(self):
        """Regression: loss-aborted shots stop before their fusion
        sequence, so their pre-sampled attempts must not be tallied —
        attempts per *completed* fusion still averages 1/fusion_success
        even when a macroscopic fraction of shots aborts."""
        model = NoiseModel(
            fusion_success=0.5,
            fusion_error=0.0,
            cycle_loss=0.01,
            measurement_error=0.0,
        )
        result = sample_yield(
            get_benchmark("BV", 16), shots=3000, model=model, seed=13
        )
        assert result.loss_aborts > 300  # the lossy regime is active
        assert result.completed == result.shots - result.loss_aborts
        assert result.attempts_per_fusion == pytest.approx(2.0, rel=0.05)
        # the tally covers completed shots only: it must be bounded by
        # what those shots could have drawn, not by the all-shots total
        assert result.fusion_attempts >= result.completed * result.counts.fusions


class TestDeterminism:
    def test_seeded_runs_identical(self):
        """Same circuit, model and seed -> bit-identical tallies."""
        circuit = get_benchmark("BV", 12)
        a = NoisySampler(circuit, seed=42).run(800)
        b = NoisySampler(circuit, seed=42).run(800)
        assert (
            a.successes,
            a.fault_free,
            a.loss_aborts,
            a.logical_failures,
            a.executed,
            a.fusion_attempts,
        ) == (
            b.successes,
            b.fault_free,
            b.loss_aborts,
            b.logical_failures,
            b.executed,
            b.fusion_attempts,
        )

    def test_different_seeds_differ(self):
        circuit = get_benchmark("BV", 12)
        a = NoisySampler(circuit, seed=1).run(800)
        b = NoisySampler(circuit, seed=2).run(800)
        assert (a.successes, a.fusion_attempts) != (b.successes, b.fusion_attempts)


class TestEdgeCases:
    def test_zero_noise_always_succeeds(self):
        result = sample_yield(
            get_benchmark("BV", 8), shots=300, model=QUIET, seed=1
        )
        assert result.yield_mc == 1.0
        assert result.fault_free == 300
        assert result.executed == 0
        assert result.fusion_attempts == 300 * result.counts.fusions
        assert result.agrees_with_analytic()

    def test_certain_loss_aborts_everything(self):
        model = NoiseModel(cycle_loss=1.0)
        result = sample_yield(
            get_benchmark("BV", 8), shots=200, model=model, seed=1
        )
        assert result.yield_mc == 0.0
        assert result.loss_aborts == 200
        assert result.yield_analytic == 0.0
        assert result.agrees_with_analytic()

    def test_certain_measurement_error_fails_everything(self):
        model = NoiseModel(
            fusion_error=0.0, cycle_loss=0.0, measurement_error=1.0
        )
        result = sample_yield(
            get_benchmark("BV", 8), shots=100, model=model, seed=1
        )
        # every readout slot flips too, so no shot can succeed
        assert result.yield_mc == 0.0
        assert result.fault_free == 0
        assert result.yield_analytic == 0.0

    def test_heavy_fusion_errors_corrupt_output(self):
        """Injected Pauli faults must actually fail the stabilizer check
        for a macroscopic fraction of shots."""
        model = NoiseModel(
            fusion_error=0.5, cycle_loss=0.0, measurement_error=0.0
        )
        result = sample_yield(
            get_benchmark("BV", 8), shots=300, model=model, seed=9
        )
        assert result.logical_failures > 0
        assert result.yield_mc < 1.0
        assert result.yield_mc >= result.fault_free_yield

    def test_non_clifford_circuit_rejected(self):
        with pytest.raises(ValueError, match="Clifford"):
            NoisySampler(get_benchmark("QFT", 4))

    def test_non_clifford_rejection_names_offending_gates(self):
        """The rejection must say *which* gates are non-Clifford and how
        many, not just that something somewhere is."""
        from repro.sim.stabilizer import non_clifford_gate_counts

        circuit = get_benchmark("QFT", 4)
        offenders = non_clifford_gate_counts(circuit)
        assert offenders  # QFT carries non-Clifford phase rotations
        with pytest.raises(ValueError) as exc:
            NoisySampler(circuit)
        message = str(exc.value)
        assert f"{sum(offenders.values())} non-Clifford gate(s)" in message
        for name, count in offenders.items():
            assert f"{name} x{count}" in message

    def test_clifford_angle_rotations_not_named_as_offenders(self):
        """rz/p at quarter-turn angles are stabilizer-simulable and must
        not be counted."""
        import math

        from repro.circuit.circuit import Circuit
        from repro.sim.stabilizer import non_clifford_gate_counts

        circuit = Circuit(2)
        circuit.h(0)
        circuit.rz(math.pi / 2, 0)
        circuit.p(math.pi, 1)
        circuit.rz(math.pi / 3, 1)
        assert non_clifford_gate_counts(circuit) == {"rz": 1}

    def test_nonpositive_shots_rejected(self):
        sampler = NoisySampler(get_benchmark("BV", 8), seed=1)
        with pytest.raises(ValueError):
            sampler.run(0)

    def test_zero_fusion_success_rejected_with_clear_message(self):
        """Regression: fusion_success=0 used to crash inside
        rng.negative_binomial; the sampler must reject the degenerate
        bound up front (RUS never terminates -> nothing to sample)."""
        model = NoiseModel(fusion_success=0.0)
        with pytest.raises(ValueError, match="never terminates"):
            NoisySampler(get_benchmark("BV", 8), model=model, seed=1)

    def test_zero_fusion_success_without_fusions_is_fine(self):
        """With no fusions to perform the degenerate bound is vacuous."""
        from repro.sim.noisy import FaultCounts

        model = NoiseModel(
            fusion_success=0.0, fusion_error=0.0, cycle_loss=0.0,
            measurement_error=0.0,
        )
        result = sample_yield(
            get_benchmark("BV", 8),
            shots=50,
            model=model,
            counts=FaultCounts(fusions=0, measurements=10, photon_cycles=10),
            seed=1,
        )
        assert result.yield_mc == 1.0
        assert result.fusion_attempts == 0
        assert result.attempts_per_fusion == 1.0

    def test_unknown_engine_and_chunk_size_rejected(self):
        sampler = NoisySampler(get_benchmark("BV", 8), seed=1)
        with pytest.raises(ValueError, match="engine"):
            sampler.run(10, engine="warp")
        with pytest.raises(ValueError, match="chunk_size"):
            sampler.run(10, chunk_size=0)


HEAVY = NoiseModel(
    fusion_success=0.5, fusion_error=0.2, cycle_loss=0.0005,
    measurement_error=0.02,
)


def tallies(result):
    return (
        result.shots,
        result.successes,
        result.fault_free,
        result.loss_aborts,
        result.logical_failures,
        result.executed,
        result.fusion_attempts,
    )


#: Noise grid for the engine-equivalence property sweep.  ``all-faulty``
#: makes every shot execute (each fusion errs with certainty, nothing is
#: lost or flipped); ``zero-faulty`` executes nothing; the rest mix all
#: channels at different strengths.
EQUIVALENCE_NOISE = {
    "default": DEFAULT_NOISE,
    "heavy": HEAVY,
    "all-faulty": NoiseModel(
        fusion_success=1.0, fusion_error=1.0, cycle_loss=0.0,
        measurement_error=0.0,
    ),
    "zero-faulty": QUIET,
    "flip-dominated": NoiseModel(
        fusion_success=1.0, fusion_error=0.0, cycle_loss=0.0,
        measurement_error=0.1,
    ),
}


class TestEngineEquivalence:
    """Every engine must reproduce the per-shot reference engine's
    tallies bit for bit at a fixed seed (the tentpole CI contract):
    pass/fail per shot is a deterministic function of the sampled fault
    configuration, and configurations are drawn identically — sampling
    is separated from execution."""

    @pytest.mark.parametrize("noise", sorted(EQUIVALENCE_NOISE))
    @pytest.mark.parametrize("seed", [0, 7, 123])
    @pytest.mark.parametrize("shots", [1, 137])
    def test_engines_identical_across_noise_grid(self, noise, seed, shots):
        """frame x batched x per-shot, swept over seeds, shot counts
        (including the degenerate single shot) and noise regimes
        (including all-faulty and zero-faulty)."""
        circuit = get_benchmark("BV", 10)
        model = EQUIVALENCE_NOISE[noise]
        reference = NoisySampler(circuit, model=model, seed=seed).run(
            shots, engine="per-shot"
        )
        for engine in ("frame", "batched"):
            result = NoisySampler(circuit, model=model, seed=seed).run(
                shots, engine=engine
            )
            assert tallies(result) == tallies(reference), (engine, noise)
            assert result.engine == engine
        if noise == "all-faulty":
            assert reference.executed == shots
        if noise == "zero-faulty":
            assert reference.executed == 0

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_engines_match_heavy_noise_with_s_gates(self, seed):
        """A Clifford circuit with S gates measures in the Y basis too —
        the frame recurrence's (basis==Y)*s feed-forward term must agree
        with the tableau engines there."""
        import numpy as np

        from repro.circuit.circuit import Circuit

        rng = np.random.default_rng(seed)
        circuit = Circuit(5)
        for _ in range(30):
            kind = int(rng.integers(4))
            q = int(rng.integers(5))
            if kind == 0:
                circuit.h(q)
            elif kind == 1:
                circuit.s(q)
            elif kind == 2:
                circuit.x(q)
            else:
                other = int(rng.integers(5))
                if other != q:
                    circuit.cz(q, other)
        scalar = NoisySampler(circuit, model=HEAVY, seed=seed).run(
            300, engine="per-shot"
        )
        assert scalar.executed > 150  # heavy noise exercises execution
        for engine in ("frame", "batched"):
            result = NoisySampler(circuit, model=HEAVY, seed=seed).run(
                300, engine=engine
            )
            assert tallies(result) == tallies(scalar), engine

    @pytest.mark.parametrize("engine", ["frame", "batched"])
    def test_chunk_boundaries_do_not_change_tallies(self, engine):
        """Shots not divisible by the chunk size, chunk sizes of 1 and
        larger-than-the-run: all bit-identical."""
        circuit = get_benchmark("BV", 10)
        sampler = NoisySampler(circuit, model=HEAVY, seed=3)
        reference = sampler.run(137, engine="per-shot")
        for chunk_size in (1, 16, 137, 10_000):
            result = NoisySampler(circuit, model=HEAVY, seed=3).run(
                137, engine=engine, chunk_size=chunk_size
            )
            assert tallies(result) == tallies(reference), chunk_size

    def test_default_engine_is_frame(self):
        result = NoisySampler(get_benchmark("BV", 8), seed=5).run(100)
        assert result.engine == "frame"
        assert result.shots_per_second > 0.0


class TestEstimateYield:
    def test_clifford_runs_monte_carlo(self):
        estimate = estimate_yield(get_benchmark("BV", 8), shots=400, seed=7)
        assert estimate.method == "mc-stabilizer"
        assert estimate.shots == 400
        assert 0.0 <= estimate.yield_mc <= 1.0
        assert estimate.fault_free_yield is not None
        assert estimate.sigma > 0.0
        assert estimate.seconds > 0.0

    def test_non_clifford_falls_back_to_analytic(self):
        estimate = estimate_yield(get_benchmark("QFT", 4), shots=400, seed=7)
        assert estimate.method == "analytic-only"
        assert estimate.shots == 0
        assert estimate.yield_mc is None
        assert estimate.fault_free_yield is None
        assert 0.0 < estimate.yield_analytic < 1.0

    def test_custom_model_and_counts(self):
        model = NoiseModel(
            fusion_error=0.0, cycle_loss=0.005, measurement_error=0.0
        )
        counts = FaultCounts(fusions=10, measurements=20, photon_cycles=100)
        estimate = estimate_yield(
            get_benchmark("BV", 8),
            model=model,
            shots=2000,
            seed=7,
            counts=counts,
        )
        assert estimate.yield_analytic == pytest.approx(0.995**100)
        assert abs(estimate.fault_free_yield - estimate.yield_analytic) <= (
            3.0 * estimate.sigma
        )
