"""Per-site noise sampling: uniform bit-identity and hetero equivalence.

The contract the degradation layer rides on: a *uniform* SiteNoiseMap
must be indistinguishable from the scalar ``NoiseModel`` path — same
RNG consumption, bit-identical tallies at a fixed seed, on every
engine.  Heterogeneous maps sample per-site rates (grouped Poisson-
binomial draws); all three engines must still agree with each other and
the tally must agree with the per-site closed form within 3 sigma.
"""

import numpy as np
import pytest

from repro.circuit import get_benchmark
from repro.core import compile_circuit
from repro.hardware import HardwareConfig
from repro.hardware.degradation import (
    SiteNoiseMap,
    make_scenario,
    program_site_profile,
)
from repro.hardware.noise import NoiseModel
from repro.sim.noisy import ENGINES, FaultCounts, NoisySampler

MODEL = NoiseModel(
    fusion_success=0.75,
    fusion_error=0.01,
    cycle_loss=0.002,
    measurement_error=0.001,
)


def tally(result):
    return {
        "shots": result.shots,
        "successes": result.successes,
        "fault_free": result.fault_free,
        "loss_aborts": result.loss_aborts,
        "logical_failures": result.logical_failures,
        "executed": result.executed,
        "fusion_attempts": result.fusion_attempts,
    }


@pytest.fixture(scope="module")
def compiled():
    hardware = HardwareConfig.square(6)
    circuit = get_benchmark("BV", 8)
    program = compile_circuit(circuit, hardware)
    return hardware, circuit, program


def site_sampler(circuit, program, site_map, seed=7):
    return NoisySampler(
        circuit,
        counts=FaultCounts.from_program(program),
        seed=seed,
        site_map=site_map,
        site_profile=program_site_profile(program, site_map.shape),
    )


class TestUniformBitIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_uniform_map_bit_identical_to_scalar_model(
        self, compiled, engine
    ):
        hardware, circuit, program = compiled
        counts = FaultCounts.from_program(program)
        scalar = NoisySampler(
            circuit, model=MODEL, counts=counts, seed=7
        ).run(400, engine=engine)
        site_map = SiteNoiseMap.uniform(MODEL, hardware.extended_shape)
        mapped = site_sampler(circuit, program, site_map).run(
            400, engine=engine
        )
        assert tally(mapped) == tally(scalar)

    def test_uniform_map_needs_no_profile(self, compiled):
        hardware, circuit, program = compiled
        site_map = SiteNoiseMap.uniform(MODEL, hardware.extended_shape)
        sampler = NoisySampler(
            circuit,
            counts=FaultCounts.from_program(program),
            seed=7,
            site_map=site_map,
        )
        assert sampler.model == MODEL


class TestHeterogeneousSampling:
    @pytest.fixture(scope="class")
    def hetero(self, compiled):
        hardware, circuit, program = compiled
        site_map = make_scenario(
            "degraded-fusion",
            hardware.extended_shape,
            0.5,
            base=MODEL,
            seed=3,
        )
        return circuit, program, site_map

    def test_engines_agree(self, hetero):
        circuit, program, site_map = hetero
        results = [
            tally(
                site_sampler(circuit, program, site_map).run(
                    400, engine=engine
                )
            )
            for engine in ENGINES
        ]
        assert results[0] == results[1] == results[2]

    def test_agrees_with_per_site_closed_form(self, hetero):
        circuit, program, site_map = hetero
        result = site_sampler(circuit, program, site_map).run(4000)
        assert result.analytic_override is not None
        assert result.agrees_with_analytic(k=3.0)

    def test_deterministic_at_fixed_seed(self, hetero):
        circuit, program, site_map = hetero
        a = site_sampler(circuit, program, site_map, seed=11).run(300)
        b = site_sampler(circuit, program, site_map, seed=11).run(300)
        assert tally(a) == tally(b)

    def test_hetero_map_requires_profile(self, hetero):
        circuit, program, site_map = hetero
        with pytest.raises(ValueError, match="site_profile"):
            NoisySampler(
                circuit,
                counts=FaultCounts.from_program(program),
                seed=7,
                site_map=site_map,
            )

    def test_dead_assigned_fusions_rejected(self, compiled):
        hardware, circuit, program = compiled
        dead = np.ones(hardware.extended_shape, dtype=bool)
        site_map = SiteNoiseMap(
            shape=hardware.extended_shape, base=MODEL, dead=dead
        )
        with pytest.raises(ValueError, match="re-route or recompile"):
            site_sampler(circuit, program, site_map)
