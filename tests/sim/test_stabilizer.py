"""Tests for the CHP stabilizer simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mbqc.graph_state import (
    disjoint_union,
    fuse,
    linear_graph,
    relabeled,
    ring_graph,
    star_graph,
)
from repro.sim.stabilizer import PauliString, StabilizerState


class TestPauliString:
    def test_from_ops(self):
        p = PauliString.from_ops(3, {0: "x", 2: "z"})
        assert p.x[0] == 1 and p.z[2] == 1
        assert p.z[0] == 0

    def test_y_sets_both(self):
        p = PauliString.from_ops(2, {1: "y"})
        assert p.x[1] == 1 and p.z[1] == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_ops(1, {0: "w"})

    def test_str(self):
        p = PauliString.from_ops(3, {0: "x", 1: "z"}, sign=1)
        assert str(p) == "-X0*Z1"


class TestBasics:
    def test_initial_zero_measurement(self):
        s = StabilizerState(3)
        assert s.measure_z(1) == 0

    def test_x_flips(self):
        s = StabilizerState(1)
        s.x_gate(0)
        assert s.measure_z(0) == 1

    def test_h_randomizes(self):
        s = StabilizerState(1, seed=0)
        s.h(0)
        outcomes = set()
        for force in (0, 1):
            t = s.copy()
            outcomes.add(t.measure_z(0, force=force))
        assert outcomes == {0, 1}

    def test_bell_correlation(self):
        for force in (0, 1):
            s = StabilizerState(2)
            s.h(0)
            s.cnot(0, 1)
            assert s.measure_z(0, force=force) == s.measure_z(1)

    def test_ghz_correlation(self):
        s = StabilizerState(3)
        s.h(0)
        s.cnot(0, 1)
        s.cnot(1, 2)
        m = s.measure_z(0, force=1)
        assert s.measure_z(1) == m
        assert s.measure_z(2) == m

    def test_forced_impossible_outcome_rejected(self):
        s = StabilizerState(1)
        with pytest.raises(RuntimeError):
            s.measure_z(0, force=1)

    def test_s_gate_phase(self):
        # S^2 = Z: |+> -> S S |+> = |->, so X measurement gives -1
        s = StabilizerState(1)
        s.h(0)
        s.s(0)
        s.s(0)
        m = s.measure_pauli(PauliString.from_ops(1, {0: "x"}))
        assert m == 1

    def test_cz_creates_graph_state(self):
        s = StabilizerState(2)
        s.h(0)
        s.h(1)
        s.cz(0, 1)
        # stabilizers X0 Z1 and Z0 X1 have value +1
        assert s.measure_pauli(PauliString.from_ops(2, {0: "x", 1: "z"})) == 0
        assert s.measure_pauli(PauliString.from_ops(2, {0: "z", 1: "x"})) == 0


class TestGraphStates:
    @pytest.mark.parametrize("graph", [linear_graph(4), star_graph(3), ring_graph(5)])
    def test_graph_stabilizers_plus_one(self, graph):
        """Every graph-state stabilizer X_i prod Z_n(i) measures +1."""
        state, index = StabilizerState.graph_state(graph)
        for node in graph.nodes():
            ops = {index[node]: "x"}
            for nbr in graph.neighbors(node):
                ops[index[nbr]] = "z"
            assert state.measure_pauli(PauliString.from_ops(state.n, ops)) == 0

    def test_canonical_equality_reflexive(self):
        a, _ = StabilizerState.graph_state(linear_graph(5))
        b, _ = StabilizerState.graph_state(linear_graph(5))
        assert a.equals(b)

    def test_canonical_inequality(self):
        a, _ = StabilizerState.graph_state(linear_graph(4))
        b, _ = StabilizerState.graph_state(star_graph(3))
        assert not a.equals(b)

    def test_matches_dense_statevector(self):
        from repro.mbqc.graph_state import graph_state_vector

        graph = star_graph(3)
        psi = graph_state_vector(graph)
        state, index = StabilizerState.graph_state(graph)
        # verify each canonical stabilizer has +1 expectation in psi
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        z = np.diag([1.0, -1.0]).astype(complex)
        for node in graph.nodes():
            op = np.ones((1, 1), dtype=complex)
            for q in sorted(graph.nodes()):
                if q == node:
                    m = x
                elif graph.has_edge(q, node):
                    m = z
                else:
                    m = np.eye(2, dtype=complex)
                op = np.kron(m, op)
            assert np.vdot(psi, op @ psi).real == pytest.approx(1.0)


class TestFusionAtScale:
    @pytest.mark.parametrize(
        "g1,g2,c,d",
        [
            (linear_graph(3), linear_graph(3), 2, 0),
            (star_graph(4), linear_graph(3), 1, 1),
            (ring_graph(5), linear_graph(4), 0, 0),
            (linear_graph(12), star_graph(6), 11, 2),
            (ring_graph(8), ring_graph(8), 3, 5),
        ],
    )
    def test_fusion_rule_stabilizer_check(self, g1, g2, c, d):
        """XZ/ZX fusion (+1,+1 branch) equals the graph-merge rule."""
        g = disjoint_union(g1, relabeled(g2, 100))
        order = sorted(g.nodes())
        state, index = StabilizerState.graph_state(g, order=order)
        ic, id_ = index[c], index[d + 100]
        state.measure_pauli(
            PauliString.from_ops(state.n, {ic: "x", id_: "z"}), force=0
        )
        state.measure_pauli(
            PauliString.from_ops(state.n, {ic: "z", id_: "x"}), force=0
        )
        rest = state.discard([ic, id_])
        merged = fuse(g, c, d + 100)
        korder = [v for v in order if v not in (c, d + 100)]
        target, _ = StabilizerState.graph_state(merged, order=korder)
        assert rest.canonical_stabilizers() == target.canonical_stabilizers()

    def test_discard_entangled_rejected(self):
        state, _ = StabilizerState.graph_state(linear_graph(3))
        with pytest.raises(ValueError):
            state.discard([1])  # middle qubit is entangled

    def test_discard_product_qubit(self):
        s = StabilizerState(3)
        s.h(0)
        s.cnot(0, 1)
        rest = s.discard([2])
        assert rest.n == 2

    def test_measurement_on_discarded_state_raises(self):
        """discard() zeroes the destabilizer rows; a measurement there
        would silently rowsum over them and return garbage — it must
        raise instead (regression: it used to return a wrong outcome)."""
        s = StabilizerState(3)
        s.h(0)
        s.cnot(0, 1)
        rest = s.discard([2])
        assert rest._destabilizers_valid is False
        with pytest.raises(RuntimeError, match="stale destabilizers"):
            rest.measure_z(0)
        with pytest.raises(RuntimeError, match="stale destabilizers"):
            rest.measure_pauli(PauliString.from_ops(rest.n, {0: "x", 1: "x"}))
        with pytest.raises(RuntimeError, match="stale destabilizers"):
            rest.expectation(PauliString.from_ops(rest.n, {0: "z"}))
        # group-level inspection stays available: it only reads the
        # (rebuilt) stabilizer half
        assert len(rest.canonical_stabilizers()) == rest.n


class TestCopyRngIndependence:
    def test_copy_forks_the_generator(self):
        s = StabilizerState(1, seed=123)
        assert s.copy().rng is not s.rng

    def test_measuring_a_copy_leaves_the_original_stream_intact(self):
        """Regression: ``copy()`` used to alias ``rng``, so measuring a
        copy consumed random draws from the original's stream."""
        s = StabilizerState(1, seed=123)
        s.h(0)
        twin = StabilizerState(1, seed=123)
        twin.h(0)
        for _ in range(8):
            s.copy().measure_z(0)
        # the original's stream must be untouched: same draw sequence as
        # a twin that never produced copies
        assert [s.rng.integers(2) for _ in range(16)] == [
            twin.rng.integers(2) for _ in range(16)
        ]

    def test_copy_preserves_tableau(self):
        s = StabilizerState(3, seed=0)
        s.h(0)
        s.cnot(0, 1)
        c = s.copy()
        assert np.array_equal(c.x, s.x)
        assert np.array_equal(c.z, s.z)
        assert np.array_equal(c.r, s.r)
        c.measure_z(0, force=0)
        assert not np.array_equal(c.z, s.z)  # copy collapsed, original not


def _random_clifford_pair(seed: int, n: int = 4, depth: int = 25):
    """Build one random Clifford circuit plus its stabilizer tableau."""
    import random

    from repro.circuit import Circuit

    rng = random.Random(seed)
    circuit = Circuit(n)
    for _ in range(depth):
        choice = rng.choice(
            ["h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap"]
        )
        if choice in ("cx", "cz", "swap"):
            a, b = rng.sample(range(n), 2)
            getattr(circuit, choice)(a, b)
        else:
            getattr(circuit, choice)(rng.randrange(n))
    tableau = StabilizerState(n).apply_circuit(circuit)
    return circuit, tableau


class TestCliffordCrossCheck:
    """Satellite: random Clifford circuits on both engines must agree on
    deterministic outcomes and on outcome probabilities (0, 1/2, or 1)."""

    @pytest.mark.parametrize("seed", range(12))
    def test_z_outcomes_and_probabilities(self, seed):
        from repro.sim.statevector import Statevector, simulate

        circuit, tableau = _random_clifford_pair(seed)
        sv = Statevector(circuit.num_qubits, simulate(circuit))
        for q in range(circuit.num_qubits):
            p1 = sv.measure_probability(q, 1)
            expected = tableau.expectation(PauliString.from_ops(4, {q: "z"}))
            if expected is None:
                assert p1 == pytest.approx(0.5)
            else:
                assert p1 == pytest.approx(float(expected))

    @pytest.mark.parametrize("seed", range(6))
    def test_collapse_chain_matches_dense_conditionals(self, seed):
        """Forcing outcomes on the tableau must track the dense state's
        conditional distribution measurement by measurement."""
        import random

        from repro.sim.statevector import simulate

        circuit, tableau = _random_clifford_pair(seed, depth=30)
        n = circuit.num_qubits
        psi = simulate(circuit)
        rng = random.Random(seed + 1000)
        for q in range(n):
            probs = np.abs(psi) ** 2
            mask = (np.arange(len(probs)) >> q) & 1
            p1 = float(probs[mask == 1].sum())
            expected = tableau.expectation(PauliString.from_ops(n, {q: "z"}))
            if expected is None:
                assert p1 == pytest.approx(0.5)
                outcome = rng.randint(0, 1)
            else:
                assert p1 == pytest.approx(float(expected))
                outcome = expected
            tableau.measure_z(q, force=outcome)
            # project the dense state onto the same branch
            psi = np.where(mask == outcome, psi, 0.0)
            psi = psi / np.linalg.norm(psi)


class TestRandomCliffordAgainstDense:
    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_random_clifford_circuit_outcomes(self, seed):
        """Forced-outcome Z measurements agree with dense amplitudes."""
        import random

        from repro.circuit import Circuit
        from repro.sim.statevector import simulate

        rng = random.Random(seed)
        n = 3
        circuit = Circuit(n)
        tableau = StabilizerState(n)
        for _ in range(10):
            choice = rng.choice(["h", "s", "x", "z", "cnot", "cz"])
            if choice in ("h", "s", "x", "z"):
                q = rng.randrange(n)
                circuit.add({"h": "h", "s": "s", "x": "x", "z": "z"}[choice], q)
                getattr(
                    tableau,
                    {"h": "h", "s": "s", "x": "x_gate", "z": "z_gate"}[choice],
                )(q)
            else:
                a, b = rng.sample(range(n), 2)
                if choice == "cnot":
                    circuit.cx(a, b)
                    tableau.cnot(a, b)
                else:
                    circuit.cz(a, b)
                    tableau.cz(a, b)
        psi = simulate(circuit)
        probs = np.abs(psi) ** 2
        qubit = rng.randrange(n)
        mask = (np.arange(len(probs)) >> qubit) & 1
        p1 = float(probs[mask == 1].sum())
        if p1 > 1e-9 and p1 < 1 - 1e-9:
            # random outcome: both forcings succeed
            for force in (0, 1):
                tableau.copy().measure_z(qubit, force=force)
        else:
            deterministic = tableau.copy().measure_z(qubit)
            assert deterministic == (1 if p1 > 0.5 else 0)
