"""Equivalence tests: batched tableau engine vs the scalar CHP engine.

The batched engine shares one symplectic (x/z) tableau across the batch
and keeps only sign bits per element, so every test here pins a batch
element against an independently evolved scalar
:class:`~repro.sim.stabilizer.StabilizerState` — gates, per-element
Pauli injection, and measurement sequences (scalar replays force the
batched outcomes, which makes the two row-operation sequences identical
and the final tableaux exactly comparable).
"""

import networkx as nx
import numpy as np
import pytest

from repro.sim.stabilizer import PauliString, StabilizerState
from repro.sim.stabilizer_batch import BatchedStabilizerState

ONE_QUBIT = ("h", "s", "sdg", "x_gate", "y_gate", "z_gate")
TWO_QUBIT = ("cnot", "cz", "swap")


def random_gate_sequence(rng, n, length):
    """A random Clifford gate sequence as (method, qubits) pairs."""
    ops = []
    for _ in range(length):
        if n > 1 and rng.random() < 0.4:
            a, b = rng.choice(n, size=2, replace=False)
            ops.append((TWO_QUBIT[rng.integers(3)], (int(a), int(b))))
        else:
            ops.append(
                (ONE_QUBIT[rng.integers(6)], (int(rng.integers(n)),))
            )
    return ops


def apply_ops(state, ops):
    for method, qubits in ops:
        getattr(state, method)(*qubits)


def assert_element_equals_scalar(batched, element, scalar):
    """Exact tableau comparison of one batch element vs a scalar state."""
    assert np.array_equal(batched.x, scalar.x)
    assert np.array_equal(batched.z, scalar.z)
    assert np.array_equal(batched.r[element], scalar.r)


class TestUniformClifford:
    @pytest.mark.parametrize("n", [1, 3, 8, 70])
    def test_random_circuit_matches_scalar(self, n):
        """A uniform gate sequence leaves every element equal to the
        scalar engine evolved by the same sequence."""
        rng = np.random.default_rng(n)
        ops = random_gate_sequence(rng, n, 60)
        batched = BatchedStabilizerState(n, batch=5)
        scalar = StabilizerState(n)
        apply_ops(batched, ops)
        apply_ops(scalar, ops)
        for element in range(batched.batch):
            assert_element_equals_scalar(batched, element, scalar)

    def test_apply_circuit_matches_scalar(self):
        from repro.circuit import get_benchmark

        circuit = get_benchmark("BV", 8)
        batched = BatchedStabilizerState(8, batch=3).apply_circuit(circuit)
        scalar = StabilizerState(8).apply_circuit(circuit)
        for element in range(3):
            assert_element_equals_scalar(batched, element, scalar)

    def test_graph_state_matches_scalar(self):
        graph = nx.gnm_random_graph(12, 30, seed=3)
        batched, b_index = BatchedStabilizerState.graph_state(
            graph, batch=4, zero_nodes=[0, 1]
        )
        scalar, s_index = StabilizerState.graph_state(
            graph, zero_nodes=[0, 1]
        )
        assert b_index == s_index
        for element in range(4):
            assert_element_equals_scalar(batched, element, scalar)


class TestPauliInjection:
    def test_per_element_paulis_match_scalar_gates(self):
        """inject_pauli on element b == the scalar Pauli gate on a state
        evolved identically."""
        rng = np.random.default_rng(11)
        n, batch = 6, 4
        ops = random_gate_sequence(rng, n, 40)
        batched = BatchedStabilizerState(n, batch)
        apply_ops(batched, ops)
        faults = [
            [(int(rng.integers(n)), "xyz"[rng.integers(3)]) for _ in range(k)]
            for k in range(batch)
        ]
        for element, fault_list in enumerate(faults):
            for qubit, kind in fault_list:
                batched.inject_pauli(element, qubit, kind)
        for element, fault_list in enumerate(faults):
            scalar = StabilizerState(n)
            apply_ops(scalar, ops)
            for qubit, kind in fault_list:
                getattr(scalar, f"{kind}_gate")(qubit)
            assert_element_equals_scalar(batched, element, scalar)

    def test_masked_pauli_gates(self):
        batched = BatchedStabilizerState(2, batch=3)
        batched.h(0)
        batched.cnot(0, 1)
        batched.x_gate(0, mask=np.array([True, False, True]))
        with_x = StabilizerState(2)
        with_x.h(0)
        with_x.cnot(0, 1)
        without_x = with_x.copy()
        with_x.x_gate(0)
        assert_element_equals_scalar(batched, 0, with_x)
        assert_element_equals_scalar(batched, 1, without_x)
        assert_element_equals_scalar(batched, 2, with_x)

    def test_unknown_pauli_rejected(self):
        with pytest.raises(ValueError, match="unknown Pauli"):
            BatchedStabilizerState(2, batch=1).inject_pauli(0, 0, "w")


class TestBatchedMeasurement:
    def test_measurement_sequence_matches_forced_scalar_replay(self):
        """Random-basis measurement sequence on a random graph state:
        replaying each element's outcomes on the scalar engine (force=)
        must be accepted and land on the exact same tableau."""
        rng = np.random.default_rng(23)
        n = 10
        graph = nx.gnm_random_graph(n, 3 * n, seed=5)
        batch = 6
        batched, index = BatchedStabilizerState.graph_state(
            graph, batch=batch, seed=99
        )
        # per-element Pauli frames so the sign planes genuinely differ
        for element in range(batch):
            batched.inject_pauli(element, int(rng.integers(n)), "y")
        scalars = [
            StabilizerState.graph_state(graph)[0] for _ in range(batch)
        ]
        frames = batched.r.copy()
        for element, scalar in enumerate(scalars):
            scalar.r[:] = frames[element]
        paulis = [
            PauliString.from_ops(n, {int(q): "xyz"[rng.integers(3)]})
            for q in rng.permutation(n)
        ]
        for pauli in paulis:
            outcomes = batched.measure_pauli(pauli)
            assert outcomes.shape == (batch,)
            for element, scalar in enumerate(scalars):
                forced = scalar.measure_pauli(pauli, force=int(outcomes[element]))
                assert forced == int(outcomes[element])
        for element, scalar in enumerate(scalars):
            assert_element_equals_scalar(batched, element, scalar)

    def test_per_element_signs_flip_outcomes(self):
        """Deterministic measurement with per-element sign vector: the
        outcome is the base outcome XOR the element's sign."""
        batched = BatchedStabilizerState(1, batch=4)
        signs = np.array([0, 1, 0, 1], dtype=np.uint8)
        outcomes = batched.measure_z(0, signs=signs)
        assert np.array_equal(outcomes, signs)  # |0> measures +1

    def test_random_outcomes_come_from_one_vectorized_draw(self):
        """A random measurement consumes exactly one rng.integers draw
        for the whole batch (per-batch outcomes, single draw)."""
        batched = BatchedStabilizerState(1, batch=256, seed=42)
        batched.h(0)
        expected = np.random.default_rng(42).integers(
            0, 2, size=256, dtype=np.uint8
        )
        outcomes = batched.measure_z(0)
        assert np.array_equal(outcomes, expected)
        assert 0 < outcomes.sum() < 256  # both values occur

    def test_expectation_per_element(self):
        batched = BatchedStabilizerState(2, batch=2)
        batched.h(0)
        batched.cnot(0, 1)
        batched.inject_pauli(1, 0, "z")  # flips the XX sign of element 1
        xx = PauliString.from_ops(2, {0: "x", 1: "x"})
        assert np.array_equal(batched.expectation(xx), [0, 1])
        assert batched.expectation(PauliString.from_ops(2, {0: "z"})) is None


class TestConstruction:
    def test_from_state_copies_not_aliases(self):
        scalar = StabilizerState(3)
        batched = BatchedStabilizerState.from_state(scalar, batch=2)
        batched.h(0)
        batched.inject_pauli(1, 0, "z")
        assert np.array_equal(scalar.x, StabilizerState(3).x)
        assert not scalar.r.any()

    def test_from_state_rejects_stale_destabilizers(self):
        s = StabilizerState(3)
        s.h(0)
        s.cnot(0, 1)
        rest = s.discard([2])
        with pytest.raises(ValueError, match="stale destabilizers"):
            BatchedStabilizerState.from_state(rest, batch=2)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            BatchedStabilizerState(0, batch=1)
        with pytest.raises(ValueError):
            BatchedStabilizerState(1, batch=0)
        with pytest.raises(ValueError):
            BatchedStabilizerState.from_state(StabilizerState(1), batch=0)

    def test_extract_is_independent(self):
        batched = BatchedStabilizerState(2, batch=2)
        batched.h(0)
        scalar = batched.extract(0)
        scalar.x_gate(0)
        assert not batched.r.any()


class TestBatchedPatternExecutor:
    def test_fault_free_batch_satisfies_circuit_stabilizers(self):
        from repro.circuit import get_benchmark
        from repro.mbqc.translate import circuit_to_pattern
        from repro.sim.pattern_sim import BatchedStabilizerPatternSimulator

        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        result = BatchedStabilizerPatternSimulator(pattern, seed=3).run(
            batch=7
        )
        circuit_state = StabilizerState(circuit.num_qubits).apply_circuit(
            circuit
        )
        for gx, gz, gr in circuit_state.stabilizer_rows():
            pauli = result.output_pauli(pattern.outputs, gx, gz)
            values = result.state.expectation(pauli)
            assert values is not None
            assert np.array_equal(values, np.full(7, gr, dtype=np.uint8))

    def test_batched_executor_matches_forced_scalar_executor(self):
        """Element-by-element: replay each batch element's physical
        outcomes through the scalar executor (force_outcomes) with the
        same detector flips; recorded outcomes and the final tableau
        must coincide exactly."""
        from repro.circuit import get_benchmark
        from repro.mbqc.translate import circuit_to_pattern
        from repro.sim.pattern_sim import (
            BatchedStabilizerPatternSimulator,
            StabilizerPatternSimulator,
        )

        circuit = get_benchmark("BV", 6)
        pattern = circuit_to_pattern(circuit)
        batch = 4
        measured = [
            node
            for node in pattern.measurement_order()
            if node not in pattern.outputs
        ]
        rng = np.random.default_rng(17)
        flips = {
            int(node): rng.integers(0, 2, size=batch, dtype=np.uint8)
            for node in measured[:3]
        }
        result = BatchedStabilizerPatternSimulator(
            pattern, seed=5, outcome_flips=flips
        ).run(batch=batch)
        for element in range(batch):
            physical = {
                node: int(
                    result.outcomes[node][element]
                    ^ (flips[node][element] if node in flips else 0)
                )
                for node in result.outcomes
            }
            element_flips = frozenset(
                node for node in flips if flips[node][element]
            )
            scalar = StabilizerPatternSimulator(
                pattern,
                force_outcomes=physical,
                outcome_flips=element_flips,
            ).run()
            for node in result.outcomes:
                assert scalar.outcomes[node] == int(
                    result.outcomes[node][element]
                )
            assert np.array_equal(result.state.x, scalar.state.x)
            assert np.array_equal(result.state.z, scalar.state.z)
            assert np.array_equal(
                result.state.r[element], scalar.state.r
            )
