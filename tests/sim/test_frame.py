"""Tests for the bit-packed Pauli-frame engine (`repro.sim.frame`).

Engine-level equivalence against the tableau engines lives in
``tests/sim/test_noisy.py`` (the three-engine property grid); this file
covers the frame machinery itself: program compilation, the reference
calibration, the flat vs list execution entry points, and the gauge
reseed invariance.
"""

import numpy as np
import pytest

from repro.circuit import get_benchmark
from repro.circuit.circuit import Circuit
from repro.mbqc.translate import circuit_to_pattern
from repro.sim.frame import PauliFrameSimulator
from repro.sim.noisy import NoisySampler
from repro.sim.stabilizer import StabilizerState


def _clifford_with_y_measurements(num_qubits=4, seed=3):
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    for _ in range(25):
        kind = int(rng.integers(4))
        q = int(rng.integers(num_qubits))
        if kind == 0:
            circuit.h(q)
        elif kind == 1:
            circuit.s(q)
        elif kind == 2:
            circuit.x(q)
        else:
            other = int(rng.integers(num_qubits))
            if other != q:
                circuit.cz(q, other)
    return circuit


class TestFrameProgram:
    def test_compile_covers_every_measured_node(self):
        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        sim = PauliFrameSimulator(pattern, circuit=circuit, seed=1)
        program = sim.program
        assert len(program.steps) == len(pattern.measured_nodes())
        assert set(program.step_of_node) == set(pattern.measured_nodes())
        assert len(program.checks) == circuit.num_qubits
        # steps follow the pattern's measurement order exactly
        assert tuple(s.node for s in program.steps) == pattern.measurement_order()

    def test_y_basis_steps_appear_with_s_gates(self):
        circuit = _clifford_with_y_measurements()
        pattern = circuit_to_pattern(circuit)
        sim = PauliFrameSimulator(pattern, circuit=circuit, seed=1)
        assert any(step.y_basis for step in sim.program.steps)
        assert any(not step.y_basis for step in sim.program.steps)

    def test_dependencies_resolve_to_earlier_steps(self):
        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        sim = PauliFrameSimulator(pattern, circuit=circuit)
        for k, step in enumerate(sim.program.steps):
            assert all(dep < k for dep in step.x_deps)
            assert all(dep < k for dep in step.z_deps)


class TestConstruction:
    def test_requires_exactly_one_reference_source(self):
        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        with pytest.raises(ValueError, match="exactly one"):
            PauliFrameSimulator(pattern)
        state = StabilizerState(circuit.num_qubits)
        state.apply_circuit(circuit)
        with pytest.raises(ValueError, match="exactly one"):
            PauliFrameSimulator(
                pattern, circuit=circuit, circuit_rows=state.stabilizer_rows()
            )

    def test_circuit_rows_path_matches_circuit_path(self):
        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        state = StabilizerState(circuit.num_qubits)
        state.apply_circuit(circuit)
        via_rows = PauliFrameSimulator(
            pattern, circuit_rows=state.stabilizer_rows(), seed=2
        )
        via_circuit = PauliFrameSimulator(pattern, circuit=circuit, seed=2)
        assert via_rows.program == via_circuit.program

    def test_wrong_circuit_fails_calibration(self):
        """The reference run must catch a pattern that does not
        implement the claimed circuit."""
        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        wrong = Circuit(circuit.num_qubits)
        wrong.x(0)  # |10...0> is not the BV output state
        with pytest.raises(RuntimeError, match="does not implement"):
            PauliFrameSimulator(pattern, circuit=wrong)

    def test_non_clifford_pattern_rejected(self):
        circuit = get_benchmark("QFT", 4)
        pattern = circuit_to_pattern(circuit)
        with pytest.raises(ValueError, match="Clifford"):
            PauliFrameSimulator(pattern, circuit=circuit)

    def test_reference_outcomes_cover_measured_nodes(self):
        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        sim = PauliFrameSimulator(pattern, circuit=circuit, seed=5)
        assert set(sim.reference_outcomes) == set(pattern.measured_nodes())
        assert all(bit in (0, 1) for bit in sim.reference_outcomes.values())


class TestExecution:
    def _simulator(self, seed=7, reseed=True):
        circuit = _clifford_with_y_measurements(num_qubits=5, seed=11)
        pattern = circuit_to_pattern(circuit)
        return PauliFrameSimulator(
            pattern, circuit=circuit, seed=seed, reseed=reseed
        )

    def test_empty_chunk(self):
        sim = self._simulator()
        assert sim.run_chunk([]).shape == (0,)

    def test_zero_frame_shots_pass(self):
        """A shot with no faults at all is the reference itself."""
        sim = self._simulator()
        ok = sim.run_chunk([((), ())] * 70)
        assert ok.all()

    def test_benign_fault_passes_malignant_fails(self):
        """A Z fault on a |0>-like output wire lands in the output
        stabilizer group (benign) while a Y on the same wire must fail;
        cross-checked against NoisySampler's per-shot tableau path by
        the equivalence grid, so here we only pin non-triviality: a
        dense chunk of random faults yields both passes and failures."""
        sim = self._simulator()
        rng = np.random.default_rng(0)
        n = sim.program.num_qubits
        chunk = [
            (
                tuple(
                    (int(rng.integers(n)), "xyz"[int(rng.integers(3))])
                    for _ in range(2)
                ),
                (),
            )
            for _ in range(256)
        ]
        ok = sim.run_chunk(chunk)
        assert 0 < int(ok.sum()) < 256

    def test_pass_mask_deterministic_across_calls(self):
        """Repeated executions of the same chunk agree even though the
        gauge reseed consumes fresh randomness each call."""
        sim = self._simulator()
        rng = np.random.default_rng(42)
        n = sim.program.num_qubits
        measured = [step.node for step in sim.program.steps]
        chunk = []
        for _ in range(130):
            faults = tuple(
                (int(rng.integers(n)), "xyz"[int(rng.integers(3))])
                for _ in range(int(rng.integers(3)))
            )
            flips = tuple(
                measured[int(rng.integers(len(measured)))]
                for _ in range(int(rng.integers(2)))
            )
            chunk.append((faults, flips))
        a = sim.run_chunk(chunk)
        b = sim.run_chunk(chunk)
        assert np.array_equal(a, b)

    def test_reseed_does_not_change_pass_mask(self):
        """The gauge reseed randomizes frame components along measured
        operators only; measured qubits never feed the output checks,
        so the pass mask is invariant — reseed on and off must agree."""
        with_reseed = self._simulator(seed=1, reseed=True)
        without = self._simulator(seed=99, reseed=False)
        rng = np.random.default_rng(8)
        n = with_reseed.program.num_qubits
        chunk = [
            (
                tuple(
                    (int(rng.integers(n)), "xyz"[int(rng.integers(3))])
                    for _ in range(int(rng.integers(4)))
                ),
                (),
            )
            for _ in range(200)
        ]
        assert np.array_equal(
            with_reseed.run_chunk(chunk), without.run_chunk(chunk)
        )

    def test_flip_on_output_qubit_rejected(self):
        """Output readout flips are classical failures the caller
        tallies without executing; handing one to the frame engine is a
        contract violation, not a silent wrong answer."""
        circuit = get_benchmark("BV", 8)
        pattern = circuit_to_pattern(circuit)
        sim = PauliFrameSimulator(pattern, circuit=circuit)
        output_qubit = max(
            set(range(sim.program.num_qubits))
            - {step.qubit for step in sim.program.steps}
        )
        with pytest.raises(ValueError, match="never measures"):
            sim.run_shots(
                1,
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.array([output_qubit]),
                np.array([0]),
            )


class TestNoisySamplerIntegration:
    def test_frame_simulator_compiled_once_and_reused(self):
        sampler = NoisySampler(get_benchmark("BV", 8), seed=3)
        sampler.run(50, engine="frame")
        first = sampler._frame_sim
        assert first is not None
        sampler.run(50, engine="frame")
        assert sampler._frame_sim is first

    def test_other_engines_do_not_compile_the_frame_program(self):
        sampler = NoisySampler(get_benchmark("BV", 8), seed=3)
        sampler.run(50, engine="batched")
        sampler.run(50, engine="per-shot")
        assert sampler._frame_sim is None
