"""Tests for the dense statevector simulator."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.sim.statevector import (
    Statevector,
    basis_state_distribution,
    circuit_unitary,
    fidelity,
    gate_matrix,
    j_matrix,
    simulate,
    states_equal_up_to_phase,
    unitaries_equal_up_to_phase,
)


class TestGateMatrices:
    @pytest.mark.parametrize(
        "name,qubits,params",
        [
            ("h", (0,), ()),
            ("x", (0,), ()),
            ("y", (0,), ()),
            ("z", (0,), ()),
            ("s", (0,), ()),
            ("t", (0,), ()),
            ("sx", (0,), ()),
            ("rx", (0,), (0.7,)),
            ("ry", (0,), (0.7,)),
            ("rz", (0,), (0.7,)),
            ("cz", (0, 1), ()),
            ("cx", (0, 1), ()),
            ("swap", (0, 1), ()),
            ("cp", (0, 1), (0.3,)),
            ("ccx", (0, 1, 2), ()),
        ],
    )
    def test_unitarity(self, name, qubits, params):
        m = gate_matrix(Gate(name, qubits, params))
        assert np.allclose(m @ m.conj().T, np.eye(m.shape[0]), atol=1e-12)

    def test_sdg_inverse_of_s(self):
        s = gate_matrix(Gate("s", (0,)))
        sdg = gate_matrix(Gate("sdg", (0,)))
        assert np.allclose(s @ sdg, np.eye(2))

    def test_tdg_inverse_of_t(self):
        t = gate_matrix(Gate("t", (0,)))
        tdg = gate_matrix(Gate("tdg", (0,)))
        assert np.allclose(t @ tdg, np.eye(2))

    def test_j_is_h_rz(self):
        alpha = 0.9
        j = j_matrix(alpha)
        h = gate_matrix(Gate("h", (0,)))
        rz = gate_matrix(Gate("rz", (0,), (alpha,)))
        assert unitaries_equal_up_to_phase(j, h @ rz)

    def test_j_zero_is_h(self):
        assert unitaries_equal_up_to_phase(j_matrix(0.0), gate_matrix(Gate("h", (0,))))

    def test_cx_action(self):
        c = Circuit(2).x(0).cx(0, 1)
        dist = basis_state_distribution(simulate(c))
        assert dist == {3: pytest.approx(1.0)}

    def test_cx_control_off(self):
        c = Circuit(2).cx(0, 1)
        dist = basis_state_distribution(simulate(c))
        assert dist == {0: pytest.approx(1.0)}

    def test_ccx_action(self):
        c = Circuit(3).x(0).x(1).ccx(0, 1, 2)
        dist = basis_state_distribution(simulate(c))
        assert dist == {7: pytest.approx(1.0)}

    def test_swap_action(self):
        c = Circuit(2).x(0).swap(0, 1)
        dist = basis_state_distribution(simulate(c))
        assert dist == {2: pytest.approx(1.0)}


class TestStatevector:
    def test_initial_state(self):
        sv = Statevector(2)
        assert sv.data[0] == 1.0

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2, np.ones(3))

    def test_norm_preserved(self):
        sv = Statevector(3)
        for gate in Circuit(3).h(0).cx(0, 1).t(2).cz(1, 2):
            sv.apply_gate(gate)
        assert np.linalg.norm(sv.data) == pytest.approx(1.0)

    def test_measure_probability(self):
        sv = Statevector(1)
        sv.apply_gate(Gate("h", (0,)))
        assert sv.measure_probability(0, 0) == pytest.approx(0.5)
        assert sv.measure_probability(0, 1) == pytest.approx(0.5)

    def test_apply_matrix_on_middle_qubit(self):
        sv = Statevector(3)
        sv.apply_gate(Gate("x", (1,)))
        assert basis_state_distribution(sv.data) == {2: pytest.approx(1.0)}


class TestHelpers:
    def test_bell_distribution(self):
        c = Circuit(2).h(0).cx(0, 1)
        dist = basis_state_distribution(simulate(c))
        assert set(dist) == {0, 3}
        assert dist[0] == pytest.approx(0.5)

    def test_states_equal_up_to_phase(self):
        a = np.array([1, 0], dtype=complex)
        assert states_equal_up_to_phase(a, np.exp(0.3j) * a)
        assert not states_equal_up_to_phase(a, np.array([0, 1], dtype=complex))

    def test_unitaries_equal_up_to_phase(self):
        u = circuit_unitary(Circuit(1).h(0))
        assert unitaries_equal_up_to_phase(u, np.exp(1j) * u)
        v = circuit_unitary(Circuit(1).x(0))
        assert not unitaries_equal_up_to_phase(u, v)

    def test_fidelity_bounds(self):
        a = simulate(Circuit(2).h(0))
        b = simulate(Circuit(2).h(0).z(0))
        f = fidelity(a, b)
        assert 0.0 <= f <= 1.0

    def test_circuit_unitary_identity(self):
        u = circuit_unitary(Circuit(2))
        assert np.allclose(u, np.eye(4))

    def test_global_phase_gate_order_invariance(self):
        # rz and p differ by a global phase only
        a = circuit_unitary(Circuit(1).rz(0.4, 0))
        b = circuit_unitary(Circuit(1).p(0.4, 0))
        assert unitaries_equal_up_to_phase(a, b)
