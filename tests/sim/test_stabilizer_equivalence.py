"""Equivalence tests pinning the bit-packed engine to the seed engine.

``tests/sim/reference_stabilizer.py`` carries the pre-optimization CHP
implementation verbatim (same contract as the reference classes in
``tests/core/test_mapping_equivalence.py``).  The packed engine must
reproduce its tableaux — x, z and sign bits — and, because both draw one
``rng.integers(2)`` per random measurement, its measurement outcomes
bit-for-bit at a fixed seed.
"""

import random

import networkx as nx
import numpy as np
import pytest

from repro.circuit import Circuit
from repro.sim.stabilizer import (
    PauliString,
    StabilizerState,
    _unpack_bits,
)
from tests.sim.reference_stabilizer import (
    PauliString as ReferencePauliString,
    StabilizerState as ReferenceStabilizerState,
)

#: (method name on both engines, number of qubit arguments)
_GATES = [("h", 1), ("s", 1), ("x_gate", 1), ("z_gate", 1), ("cnot", 2), ("cz", 2)]


def unpacked_tableau(state: StabilizerState):
    x = np.array([_unpack_bits(row, state.n) for row in state.x])
    z = np.array([_unpack_bits(row, state.n) for row in state.z])
    return x, z, state.r.copy()


def assert_same_tableau(packed: StabilizerState, ref: ReferenceStabilizerState):
    x, z, r = unpacked_tableau(packed)
    assert np.array_equal(x, ref.x)
    assert np.array_equal(z, ref.z)
    assert np.array_equal(r, ref.r)


def random_ops(rng: random.Random, n: int, length: int):
    ops = []
    for _ in range(length):
        name, arity = rng.choice(_GATES)
        if arity == 2 and n < 2:
            continue
        qubits = rng.sample(range(n), arity)
        ops.append((name, qubits))
    return ops


def random_pauli_ops(rng: random.Random, n: int):
    support = rng.sample(range(n), rng.randint(1, min(3, n)))
    return {q: rng.choice("xyz") for q in support}, rng.randint(0, 1)


class TestGateEquivalence:
    #: qubit counts straddling the 64-bit word boundary
    @pytest.mark.parametrize("n", [1, 3, 63, 64, 65, 130])
    def test_random_gate_sequences_identical(self, n):
        rng = random.Random(n)
        ref = ReferenceStabilizerState(n, seed=n)
        packed = StabilizerState(n, seed=n)
        for name, qubits in random_ops(rng, n, 80):
            getattr(ref, name)(*qubits)
            getattr(packed, name)(*qubits)
        assert_same_tableau(packed, ref)

    @pytest.mark.parametrize("seed", range(5))
    def test_apply_circuit_matches_gate_by_gate(self, seed):
        rng = random.Random(seed)
        n = 6
        circuit = Circuit(n)
        ref = ReferenceStabilizerState(n)
        for _ in range(40):
            choice = rng.choice(["h", "s", "x", "y", "z", "cx", "cz", "swap"])
            if choice in ("h", "s", "x", "y", "z"):
                q = rng.randrange(n)
                getattr(circuit, choice)(q)
                if choice == "h":
                    ref.h(q)
                elif choice == "s":
                    ref.s(q)
                elif choice == "x":
                    ref.x_gate(q)
                elif choice == "y":  # Y = iXZ: conjugation flips X and Z
                    ref.z_gate(q)
                    ref.x_gate(q)
                else:
                    ref.z_gate(q)
            else:
                a, b = rng.sample(range(n), 2)
                getattr(circuit, choice)(a, b)
                if choice == "cx":
                    ref.cnot(a, b)
                elif choice == "cz":
                    ref.h(b)
                    ref.cnot(a, b)
                    ref.h(b)
                else:  # swap = three cnots
                    ref.cnot(a, b)
                    ref.cnot(b, a)
                    ref.cnot(a, b)
        packed = StabilizerState(n).apply_circuit(circuit)
        assert_same_tableau(packed, ref)


class TestMeasurementEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_gates_and_measurements_bit_identical(self, seed):
        rng = random.Random(seed)
        n = rng.choice([5, 40, 70])
        ref = ReferenceStabilizerState(n, seed=seed)
        packed = StabilizerState(n, seed=seed)
        for step in range(60):
            if rng.random() < 0.3:
                ops, sign = random_pauli_ops(rng, n)
                m_ref = ref.measure_pauli(
                    ReferencePauliString.from_ops(n, ops, sign=sign)
                )
                m_packed = packed.measure_pauli(
                    PauliString.from_ops(n, ops, sign=sign)
                )
                assert m_ref == m_packed, (seed, step, ops)
            else:
                for name, qubits in random_ops(rng, n, 1):
                    getattr(ref, name)(*qubits)
                    getattr(packed, name)(*qubits)
        assert_same_tableau(packed, ref)

    def test_measure_many_matches_sequential(self):
        graph = nx.gnm_random_graph(30, 60, seed=3)
        ref, _ = ReferenceStabilizerState.graph_state(graph, seed=9)
        packed, _ = StabilizerState.graph_state(graph, seed=9)
        rng = random.Random(9)
        plans = [random_pauli_ops(rng, 30) for _ in range(30)]
        ref_out = [
            ref.measure_pauli(ReferencePauliString.from_ops(30, ops, sign=sign))
            for ops, sign in plans
        ]
        packed_out = packed.measure_many(
            [PauliString.from_ops(30, ops, sign=sign) for ops, sign in plans]
        )
        assert ref_out == packed_out
        assert_same_tableau(packed, ref)

    def test_forced_and_deterministic_semantics_match(self):
        for force in (0, 1):
            ref = ReferenceStabilizerState(2)
            packed = StabilizerState(2)
            for s in (ref, packed):
                s.h(0)
                s.cnot(0, 1)
            assert ref.measure_z(0, force=force) == packed.measure_z(
                0, force=force
            )
            assert ref.measure_z(1) == packed.measure_z(1)
        with pytest.raises(RuntimeError):
            StabilizerState(1).measure_z(0, force=1)


class TestGraphStateEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_bulk_construction_matches_gate_sequence(self, seed):
        graph = nx.gnm_random_graph(50, 2 * 50, seed=seed)
        ref, ref_index = ReferenceStabilizerState.graph_state(graph, seed=seed)
        packed, packed_index = StabilizerState.graph_state(graph, seed=seed)
        assert ref_index == packed_index
        assert_same_tableau(packed, ref)

    def test_zero_nodes_equal_unhadamarded_inputs(self):
        """``zero_nodes`` reproduces |0> inputs + H elsewhere + CZ edges."""
        graph = nx.path_graph(6)
        inputs = [0, 3]
        ref = ReferenceStabilizerState(6)
        for q in range(6):
            if q not in inputs:
                ref.h(q)
        for u, v in graph.edges():
            ref.cz(u, v)
        packed, _ = StabilizerState.graph_state(graph, zero_nodes=inputs)
        assert_same_tableau(packed, ref)

    def test_canonical_stabilizers_match(self):
        graph = nx.cycle_graph(9)
        ref, _ = ReferenceStabilizerState.graph_state(graph)
        packed, _ = StabilizerState.graph_state(graph)
        assert packed.canonical_stabilizers() == ref.canonical_stabilizers()

    def test_expectation_agrees_with_reference_measurement(self):
        graph = nx.star_graph(7)
        ref, index = ReferenceStabilizerState.graph_state(graph)
        packed, _ = StabilizerState.graph_state(graph)
        for node in graph.nodes():
            ops = {index[node]: "x"}
            for nbr in graph.neighbors(node):
                ops[index[nbr]] = "z"
            expected = ref.measure_pauli(
                ReferencePauliString.from_ops(ref.n, ops)
            )
            assert packed.expectation(
                PauliString.from_ops(packed.n, ops)
            ) == expected
        # a random (anticommuting) measurement has no expectation
        assert packed.expectation(
            PauliString.from_ops(packed.n, {0: "z"})
        ) is None


class TestDiscardEquivalence:
    def test_discard_matches_reference(self):
        graph = nx.path_graph(5)
        ref, _ = ReferenceStabilizerState.graph_state(graph)
        packed, _ = StabilizerState.graph_state(graph)
        for s, P in ((ref, ReferencePauliString), (packed, PauliString)):
            s.measure_pauli(P.from_ops(5, {0: "x", 1: "z"}), force=0)
            s.measure_pauli(P.from_ops(5, {0: "z", 1: "x"}), force=0)
        assert (
            packed.discard([0, 1]).canonical_stabilizers()
            == ref.discard([0, 1]).canonical_stabilizers()
        )
