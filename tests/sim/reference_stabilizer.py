"""The seed CHP stabilizer engine, verbatim — equivalence oracle.

This is the pre-optimization ``repro.sim.stabilizer`` kept word for word
(same pattern as the reference implementations in
``tests/core/test_mapping_equivalence.py``).  The bit-packed production
engine must reproduce its tableaux and — because both draw one
``rng.integers(2)`` per random measurement — its measurement outcomes
bit-for-bit at a fixed seed.  ``benchmarks/bench_stabilizer.py`` times
this engine against the packed one to record the speedup.

Representation follows arXiv:quant-ph/0406196: ``2n`` rows of binary
``x``/``z`` vectors plus a sign bit; rows ``0..n-1`` are destabilizers and
rows ``n..2n-1`` stabilizers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


class PauliString:
    """A signed Pauli product on *n* qubits, e.g. ``+X0*Z3``."""

    def __init__(self, num_qubits: int):
        self.n = num_qubits
        self.x = np.zeros(num_qubits, dtype=np.uint8)
        self.z = np.zeros(num_qubits, dtype=np.uint8)
        self.sign = 0  # 0 -> +1, 1 -> -1

    @classmethod
    def from_ops(
        cls, num_qubits: int, ops: Dict[int, str], sign: int = 0
    ) -> "PauliString":
        """Build from a map qubit -> 'x' | 'y' | 'z'."""
        p = cls(num_qubits)
        for qubit, op in ops.items():
            op = op.lower()
            if op == "x":
                p.x[qubit] = 1
            elif op == "z":
                p.z[qubit] = 1
            elif op == "y":
                p.x[qubit] = 1
                p.z[qubit] = 1
            else:
                raise ValueError(f"unknown Pauli {op!r}")
        p.sign = sign & 1
        return p

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for q in range(self.n):
            if self.x[q] and self.z[q]:
                parts.append(f"Y{q}")
            elif self.x[q]:
                parts.append(f"X{q}")
            elif self.z[q]:
                parts.append(f"Z{q}")
        body = "*".join(parts) if parts else "I"
        return ("-" if self.sign else "+") + body


def _g(x1: int, z1: int, x2: int, z2: int) -> int:
    """AG phase function: exponent of i when multiplying two Paulis."""
    if x1 == 0 and z1 == 0:
        return 0
    if x1 == 1 and z1 == 1:  # Y
        return z2 - x2
    if x1 == 1 and z1 == 0:  # X
        return z2 * (2 * x2 - 1)
    return x2 * (1 - 2 * z2)  # Z


class StabilizerState:
    """A stabilizer state on ``num_qubits`` qubits, initially ``|0...0>``."""

    def __init__(self, num_qubits: int, seed: Optional[int] = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        n = num_qubits
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1          # destabilizer X_i
            self.z[n + i, i] = 1      # stabilizer Z_i
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def graph_state(
        cls, graph: nx.Graph, order: Optional[Sequence] = None, seed: Optional[int] = None
    ) -> Tuple["StabilizerState", Dict]:
        """Build the graph state of *graph*; returns (state, node->qubit)."""
        nodes = list(order) if order is not None else sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        state = cls(len(nodes), seed=seed)
        for i in range(len(nodes)):
            state.h(i)
        for u, v in graph.edges():
            state.cz(index[u], index[v])
        return state, index

    def copy(self) -> "StabilizerState":
        out = StabilizerState(self.n)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        out.rng = self.rng
        return out

    # ------------------------------------------------------------------
    # internal row algebra
    # ------------------------------------------------------------------
    def _rowsum_into(
        self,
        hx: np.ndarray,
        hz: np.ndarray,
        hr: int,
        ix: np.ndarray,
        iz: np.ndarray,
        ir: int,
        strict: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Return row h := h * i with AG phase tracking (mod 4 exponent).

        Stabilizer-row products are always Hermitian (phase in {+1, -1});
        destabilizer rows may pick up factors of i, whose sign bit is
        irrelevant, so callers pass ``strict=False`` for them.
        """
        phase = 2 * (hr + ir)
        for q in range(self.n):
            phase += _g(int(ix[q]), int(iz[q]), int(hx[q]), int(hz[q]))
        phase %= 4
        if strict and phase not in (0, 2):
            raise RuntimeError("non-Hermitian product in stabilizer rowsum")
        return hx ^ ix, hz ^ iz, (phase // 2) % 2

    def _rowsum(self, h: int, i: int) -> None:
        strict = h >= self.n
        self.x[h], self.z[h], self.r[h] = self._rowsum_into(
            self.x[h],
            self.z[h],
            int(self.r[h]),
            self.x[i],
            self.z[i],
            int(self.r[i]),
            strict=strict,
        )

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def x_gate(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def cnot(self, control: int, target: int) -> None:
        self.r ^= (
            self.x[:, control]
            & self.z[:, target]
            & (self.x[:, target] ^ self.z[:, control] ^ 1)
        )
        self.x[:, target] ^= self.x[:, control]
        self.z[:, control] ^= self.z[:, target]

    def cz(self, a: int, b: int) -> None:
        self.h(b)
        self.cnot(a, b)
        self.h(b)

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def measure_z(self, q: int, force: Optional[int] = None) -> int:
        pauli = PauliString.from_ops(self.n, {q: "z"})
        return self.measure_pauli(pauli, force=force)

    def _anticommutes(self, row: int, pauli: PauliString) -> bool:
        sym = np.sum(self.x[row] & pauli.z) + np.sum(self.z[row] & pauli.x)
        return bool(sym % 2)

    def measure_pauli(self, pauli: PauliString, force: Optional[int] = None) -> int:
        """Measure a Pauli product; returns outcome ``m`` for ``(-1)^m``.

        ``force`` postselects an outcome for the random case (raises if
        the forced outcome has zero probability in the deterministic
        case).
        """
        n = self.n
        anti_stab = [
            i for i in range(n, 2 * n) if self._anticommutes(i, pauli)
        ]
        if anti_stab:
            p = anti_stab[0]
            outcome = (
                int(force) if force is not None else int(self.rng.integers(2))
            )
            for i in range(2 * n):
                if i != p and self._anticommutes(i, pauli):
                    self._rowsum(i, p)
            # old stabilizer becomes the destabilizer of the new one
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = pauli.x.copy()
            self.z[p] = pauli.z.copy()
            self.r[p] = (pauli.sign + outcome) % 2
            return outcome
        # deterministic: accumulate product of stabilizers whose
        # destabilizer partners anticommute with the measured Pauli
        accx = np.zeros(n, dtype=np.uint8)
        accz = np.zeros(n, dtype=np.uint8)
        accr = 0
        for i in range(n):
            if self._anticommutes(i, pauli):
                accx, accz, accr = self._rowsum_into(
                    accx, accz, accr, self.x[n + i], self.z[n + i], int(self.r[n + i])
                )
        if not (np.array_equal(accx, pauli.x) and np.array_equal(accz, pauli.z)):
            raise RuntimeError(
                "deterministic measurement does not reproduce the Pauli; "
                "tableau is corrupt"
            )
        outcome = (accr + pauli.sign) % 2
        if force is not None and int(force) != outcome:
            raise RuntimeError(
                f"forced outcome {force} has zero probability (got {outcome})"
            )
        return outcome

    # ------------------------------------------------------------------
    # group inspection
    # ------------------------------------------------------------------
    def stabilizer_rows(self) -> List[Tuple[np.ndarray, np.ndarray, int]]:
        return [
            (self.x[i].copy(), self.z[i].copy(), int(self.r[i]))
            for i in range(self.n, 2 * self.n)
        ]

    def canonical_stabilizers(self) -> List[Tuple[Tuple[int, ...], int]]:
        """Canonical (RREF) generating set as hashable rows.

        Each row is ``((x|z) bits, sign)``; two states are equal iff their
        canonical sets are equal.
        """
        rows = [
            (np.concatenate([x, z]), r) for (x, z, r) in self.stabilizer_rows()
        ]
        return _canonicalize(rows, self.n)

    def equals(self, other: "StabilizerState") -> bool:
        if self.n != other.n:
            return False
        return self.canonical_stabilizers() == other.canonical_stabilizers()

    def discard(self, qubits: Iterable[int]) -> "StabilizerState":
        """Project out *qubits* that must be unentangled with the rest.

        Returns a new state on the remaining qubits.  Raises if the
        stabilizer group restricted to the kept qubits has fewer than
        ``n - len(qubits)`` generators, i.e. the discarded qubits are
        still entangled with the rest.
        """
        drop = sorted(set(qubits))
        keep = [q for q in range(self.n) if q not in drop]
        rows = [
            (np.concatenate([x, z]), r) for (x, z, r) in self.stabilizer_rows()
        ]
        # eliminate support on dropped qubits: pivot those columns first
        priority_cols = []
        for q in drop:
            priority_cols.append(q)          # x column
            priority_cols.append(self.n + q)  # z column
        reduced = _eliminate(rows, priority_cols, self.n)
        survivors = [
            (vec, r)
            for vec, r in reduced
            if not any(vec[c] for c in priority_cols)
        ]
        if len(survivors) < len(keep):
            raise ValueError(
                "discarded qubits are still entangled with the rest"
            )
        out = StabilizerState(len(keep))
        col_map = {q: i for i, q in enumerate(keep)}
        for i, (vec, r) in enumerate(survivors[: len(keep)]):
            xs = np.zeros(len(keep), dtype=np.uint8)
            zs = np.zeros(len(keep), dtype=np.uint8)
            for q in keep:
                xs[col_map[q]] = vec[q]
                zs[col_map[q]] = vec[self.n + q]
            out.x[len(keep) + i] = xs
            out.z[len(keep) + i] = zs
            out.r[len(keep) + i] = r
        # destabilizers of `out` are now stale; rebuild a consistent pair
        # set by completing the symplectic basis is unnecessary for the
        # comparisons we support, so mark them unusable instead.
        out._destabilizers_valid = False
        return out

    _destabilizers_valid = True


def _phase_product(
    a: Tuple[np.ndarray, int], b: Tuple[np.ndarray, int], n: int
) -> Tuple[np.ndarray, int]:
    """Multiply two (x|z, sign) rows with correct sign tracking."""
    ax, az = a[0][:n], a[0][n:]
    bx, bz = b[0][:n], b[0][n:]
    phase = 2 * (a[1] + b[1])
    for q in range(n):
        phase += _g(int(bx[q]), int(bz[q]), int(ax[q]), int(az[q]))
    phase %= 4
    if phase not in (0, 2):  # pragma: no cover
        raise RuntimeError("non-Hermitian product")
    return a[0] ^ b[0], phase // 2


def _eliminate(
    rows: List[Tuple[np.ndarray, int]], cols: List[int], n: int
) -> List[Tuple[np.ndarray, int]]:
    """Gaussian elimination over GF(2), pivoting *cols* first."""
    rows = [(vec.copy(), r) for vec, r in rows]
    width = 2 * n
    all_cols = cols + [c for c in range(width) if c not in cols]
    pivot_row = 0
    for col in all_cols:
        pivot = next(
            (i for i in range(pivot_row, len(rows)) if rows[i][0][col]), None
        )
        if pivot is None:
            continue
        rows[pivot_row], rows[pivot] = rows[pivot], rows[pivot_row]
        for i in range(len(rows)):
            if i != pivot_row and rows[i][0][col]:
                rows[i] = _phase_product(rows[i], rows[pivot_row], n)
        pivot_row += 1
        if pivot_row == len(rows):
            break
    return rows


def _canonicalize(
    rows: List[Tuple[np.ndarray, int]], n: int
) -> List[Tuple[Tuple[int, ...], int]]:
    reduced = _eliminate(rows, [], n)
    out = [
        (tuple(int(b) for b in vec), int(r))
        for vec, r in reduced
        if vec.any()
    ]
    return sorted(out)


def graph_state_stabilizers(graph: nx.Graph, order: Optional[Sequence] = None):
    """Canonical stabilizer set of a graph state (for comparisons)."""
    state, _ = StabilizerState.graph_state(graph, order=order)
    return state.canonical_stabilizers()
