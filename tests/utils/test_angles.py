"""Tests for angle classification helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.angles import (
    is_clifford_angle,
    is_pauli_angle,
    normalize_angle,
)


class TestNormalizeAngle:
    def test_zero(self):
        assert normalize_angle(0.0) == 0.0

    def test_two_pi_wraps_to_zero(self):
        assert normalize_angle(2 * math.pi) == pytest.approx(0.0)

    def test_negative_wraps_positive(self):
        assert normalize_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_large_multiple(self):
        assert normalize_angle(7 * math.pi) == pytest.approx(math.pi)

    @given(st.floats(-100.0, 100.0))
    def test_range_invariant(self, alpha):
        out = normalize_angle(alpha)
        assert 0.0 <= out < 2 * math.pi

    @given(st.floats(-50.0, 50.0))
    def test_idempotent(self, alpha):
        once = normalize_angle(alpha)
        assert normalize_angle(once) == pytest.approx(once)

    @given(st.floats(-20.0, 20.0), st.integers(-3, 3))
    def test_period_invariant(self, alpha, k):
        assert normalize_angle(alpha) == pytest.approx(
            normalize_angle(alpha + 2 * math.pi * k), abs=1e-7
        )


class TestPauliAngle:
    @pytest.mark.parametrize(
        "alpha", [0.0, math.pi / 2, math.pi, 3 * math.pi / 2, 2 * math.pi, -math.pi / 2]
    )
    def test_pauli_angles(self, alpha):
        assert is_pauli_angle(alpha)

    @pytest.mark.parametrize("alpha", [math.pi / 4, 0.3, math.pi / 3, 1.0])
    def test_non_pauli_angles(self, alpha):
        assert not is_pauli_angle(alpha)

    @given(st.integers(-8, 8))
    def test_all_quarter_turns(self, k):
        assert is_pauli_angle(k * math.pi / 2)

    def test_tolerates_float_noise(self):
        assert is_pauli_angle(math.pi / 2 + 1e-12)


class TestCliffordAngle:
    def test_same_set_as_pauli_for_equatorial(self):
        for k in range(8):
            alpha = k * math.pi / 4
            assert is_clifford_angle(alpha) == is_pauli_angle(alpha)

    def test_t_angle_not_clifford(self):
        assert not is_clifford_angle(math.pi / 4)
