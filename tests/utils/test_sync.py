"""Unit tests for the runtime lock-order sanitizer (repro.utils.sync)."""

import threading

import pytest

from repro.utils.sync import (
    LockOrderError,
    TrackedLock,
    WitnessRegistry,
    check_witness_against,
    enable_sanitizer,
    find_cycle,
    make_lock,
    sanitizer_enabled,
)


class TestFindCycle:
    def test_empty_graph(self):
        assert find_cycle([]) is None

    def test_chain_is_acyclic(self):
        assert find_cycle([("a", "b"), ("b", "c"), ("a", "c")]) is None

    def test_two_cycle(self):
        cycle = find_cycle([("a", "b"), ("b", "a")])
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b"}

    def test_longer_cycle_recovered_exactly(self):
        cycle = find_cycle(
            [("a", "b"), ("b", "c"), ("c", "a"), ("x", "a")]
        )
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b", "c"}

    def test_deterministic(self):
        edges = [("b", "a"), ("a", "b"), ("c", "d")]
        assert find_cycle(edges) == find_cycle(list(reversed(edges)))

    def test_self_loop(self):
        assert find_cycle([("a", "a")]) == ["a", "a"]


class TestWitnessRegistry:
    def test_records_edges_and_counts(self):
        reg = WitnessRegistry()
        outer = TrackedLock("outer", reg)
        inner = TrackedLock("inner", reg)
        with outer:
            with inner:
                assert reg.held() == ("outer", "inner")
        assert reg.held() == ()
        assert reg.edges() == {("outer", "inner"): 1}
        assert reg.acquisitions() == {"outer": 1, "inner": 1}
        reg.assert_acyclic()

    def test_cycle_refused_at_acquisition(self):
        reg = WitnessRegistry()
        a = TrackedLock("a", reg)
        b = TrackedLock("b", reg)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="cycle"):
                a.acquire()
        # the refused acquire must not wedge the inner mutex
        assert not a.locked()
        # and the surviving witness stays acyclic
        reg.assert_acyclic()

    def test_reacquiring_same_order_is_fine(self):
        reg = WitnessRegistry()
        a = TrackedLock("a", reg)
        b = TrackedLock("b", reg)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert reg.edges() == {("a", "b"): 3}

    def test_cross_thread_edges_accumulate(self):
        reg = WitnessRegistry()
        a = TrackedLock("a", reg)
        b = TrackedLock("b", reg)

        def use():
            with a:
                with b:
                    pass

        threads = [threading.Thread(target=use) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.edges() == {("a", "b"): 4}
        assert reg.acquisitions() == {"a": 4, "b": 4}

    def test_reset_clears(self):
        reg = WitnessRegistry()
        with TrackedLock("only", reg):
            pass
        reg.reset()
        assert reg.edges() == {}
        assert reg.acquisitions() == {}


class TestCheckWitnessAgainst:
    def test_union_cycle_with_static_edges_raises(self):
        reg = WitnessRegistry()
        a = TrackedLock("a", reg)
        b = TrackedLock("b", reg)
        with a:
            with b:
                pass
        # static analysis says b -> a somewhere else in the codebase:
        # the runtime order contradicts it even though this run survived
        with pytest.raises(LockOrderError, match="contradicts"):
            check_witness_against([("b", "a")], reg)

    def test_consistent_union_passes(self):
        reg = WitnessRegistry()
        a = TrackedLock("a", reg)
        b = TrackedLock("b", reg)
        with a:
            with b:
                pass
        witness = check_witness_against(
            [("a", "b"), ("b", "c")], reg, require_locks=["a", "b"]
        )
        assert witness == {("a", "b"): 1}

    def test_missing_required_lock_raises(self):
        reg = WitnessRegistry()
        with TrackedLock("present", reg):
            pass
        with pytest.raises(LockOrderError, match="absent"):
            check_witness_against([], reg, require_locks=["absent"])


class TestMakeLock:
    def test_disabled_returns_plain_lock(self):
        enable_sanitizer(False)
        try:
            assert not sanitizer_enabled()
            lock = make_lock("x")
            assert not isinstance(lock, TrackedLock)
            with lock:
                pass
        finally:
            enable_sanitizer(None)

    def test_enabled_returns_tracked_lock(self):
        enable_sanitizer(True)
        try:
            lock = make_lock("tests.make_lock.tracked")
            assert isinstance(lock, TrackedLock)
            assert lock.name == "tests.make_lock.tracked"
        finally:
            enable_sanitizer(None)

    def test_env_switch(self, monkeypatch):
        enable_sanitizer(None)
        monkeypatch.setenv("REPRO_SYNC_SANITIZE", "1")
        assert sanitizer_enabled()
        monkeypatch.setenv("REPRO_SYNC_SANITIZE", "0")
        assert not sanitizer_enabled()
        monkeypatch.delenv("REPRO_SYNC_SANITIZE")
        assert not sanitizer_enabled()

    def test_tracked_lock_context_and_api_parity(self):
        lock = TrackedLock("parity", WitnessRegistry())
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()
        assert "parity" in repr(lock)
