"""Tests for grid geometry helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.geometry import Rect, bounding_rect, manhattan

coords = st.tuples(st.integers(-50, 50), st.integers(-50, 50))


class TestRect:
    def test_single_cell(self):
        r = Rect(2, 3, 2, 3)
        assert r.width == 1
        assert r.height == 1
        assert r.area == 1

    def test_area(self):
        r = Rect(0, 0, 3, 4)
        assert r.area == 20

    def test_contains(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains((1, 1))
        assert r.contains((0, 0))
        assert not r.contains((3, 0))

    def test_expanded_to(self):
        r = Rect(0, 0, 1, 1).expanded_to((5, -2))
        assert r == Rect(0, -2, 5, 1)

    @given(coords, coords)
    def test_expanded_contains_both(self, a, b):
        r = Rect(a[0], a[1], a[0], a[1]).expanded_to(b)
        assert r.contains(a)
        assert r.contains(b)


class TestBoundingRect:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_rect([])

    def test_two_points(self):
        r = bounding_rect([(0, 5), (3, 1)])
        assert r == Rect(0, 1, 3, 5)

    @given(st.lists(coords, min_size=1, max_size=20))
    def test_contains_all(self, pts):
        r = bounding_rect(pts)
        assert all(r.contains(p) for p in pts)

    @given(st.lists(coords, min_size=1, max_size=20))
    def test_minimal(self, pts):
        r = bounding_rect(pts)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        assert r.x_min == min(xs) and r.x_max == max(xs)
        assert r.y_min == min(ys) and r.y_max == max(ys)


class TestManhattan:
    def test_zero(self):
        assert manhattan((1, 1), (1, 1)) == 0

    def test_simple(self):
        assert manhattan((0, 0), (3, 4)) == 7

    @given(coords, coords)
    def test_symmetric(self, a, b):
        assert manhattan(a, b) == manhattan(b, a)

    @given(coords, coords, coords)
    def test_triangle_inequality(self, a, b, c):
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)
